(** Worker-process lifecycle for the crash-only server.

    The supervisor side of the serve stack owns N worker processes
    (spawned by re-executing the host binary — see {!Worker}), each
    bridged over a socketpair on the worker's stdin/stdout.  This module
    is deliberately policy-only and select-free: the {!Server} event
    loop tells it when fds are readable, asks it who is due for a
    watchdog kill or a respawn, and it answers with plain data.  It
    never blocks (apart from {!shutdown}) and never creates domains, so
    it is safe to drive from the single supervisor thread that
    [Unix.create_process] requires.

    Lifecycle of one slot:
    {v
      spawn -> Starting --hello--> Live --death--> Down --backoff--> spawn
                                         (storm)   Broken --cooldown--> spawn
    v}

    Deaths are crash-class (anything but a clean [exit 0] during drain):
    they seal the worker's in-flight spool journal into a durable crash
    bundle, count toward the slot's restart-storm window, and schedule a
    respawn under exponential backoff.  Too many crashes inside the
    window open the slot's circuit ([Broken]): no respawn and no new
    queued work until the cooldown elapses, after which one half-open
    probe spawn is attempted. *)

type knobs = {
  k_exec : string;  (** host binary to re-exec as the worker *)
  k_spool_root : string;
  k_jobs : int;  (** per-worker domain-pool width *)
  k_max_frame : int;
  k_chaos_plan : string;  (** forwarded verbatim to workers *)
  k_store_dir : string;
      (** on-disk bundle-store directory shared by all workers;
          [""] disables the store *)
  k_store_max_mb : int;  (** store size bound for the workers' LRU sweep *)
  k_restart_backoff_ms : int;  (** first respawn delay; doubles per crash *)
  k_restart_backoff_max_ms : int;
  k_breaker_threshold : int;  (** crashes within the window that open it *)
  k_breaker_window_s : float;  (** both storm window and cooldown *)
  k_log : string -> unit;
}

type wstate = Starting | Live | Down | Broken

val state_name : wstate -> string

type wproc = {
  w_index : int;
  mutable w_pid : int;  (** [-1] when not running *)
  mutable w_fd : Unix.file_descr option;
      (** parent end of the socketpair; nonblocking, cloexec *)
  mutable w_dec : Protocol.decoder;
  mutable w_out : Util.outbuf;
  mutable w_state : wstate;
  mutable w_restarts : int;
  mutable w_crashes : int;
  mutable w_served : int;
  mutable w_last_crash : string option;
  mutable w_recent : float list;
  mutable w_backoff_ms : int;
  mutable w_retry_at : float;
  mutable w_kill_by : float;
  mutable w_pending_reason : string option;
}

type death = {
  d_index : int;
  d_reason : string;
  d_crash : bool;  (** [false] only for a clean exit during drain *)
  d_bundle : string option;  (** sealed crash-bundle path, if any *)
}

type t

val create : knobs:knobs -> spool:Spool.t -> workers:int -> t
(** Spawn all workers (at least one).
    @raise Unix.Unix_error if the very first spawns fail outright. *)

val worker : t -> int -> wproc
val n_workers : t -> int
val spool : t -> Spool.t

val is_live : t -> int -> bool

val route : t -> preferred:int -> int option
(** Slot selection with digest affinity: the preferred slot unless its
    circuit is open (a dead-but-restarting slot still keeps its queue);
    [None] only when every slot is [Broken]. *)

val any_usable : t -> bool

val note_hello : t -> int -> unit
(** The worker's ready frame arrived: mark [Live], reset its backoff. *)

val note_dispatch : t -> int -> kill_by:float -> unit
(** A job was handed to the slot; the watchdog fires at [kill_by]. *)

val note_done : t -> int -> unit

val note_store : t -> Arde.Json.t -> unit
(** Fold a worker-reported store-counter delta (the [store] field of a
    [done] frame) into the daemon-wide totals surfaced by
    {!stats_json}. *)

val send_to_worker : t -> int -> string -> unit
(** Frame and enqueue a payload on the worker's outbuf, flushing what
    the socket accepts.  Peer-gone errors are swallowed — the reaper
    owns death handling. *)

val due_watchdog : t -> now:float -> int list
val kill_watchdog : t -> int -> unit
(** SIGKILL a wedged worker; the death surfaces via {!reap} with reason
    ["watchdog"]. *)

val reap : t -> now:float -> draining:bool -> death list
(** Collect exited workers ([waitpid WNOHANG]): close their fds, seal
    crash bundles, apply backoff/breaker restart policy.  Call once per
    loop iteration after servicing readable fds. *)

val respawn_due : t -> now:float -> draining:bool -> unit

val next_timer : t -> float
(** Earliest pending deadline (watchdog or respawn) as an absolute
    time; [infinity] when idle. *)

val shutdown : t -> grace:float -> unit
(** Drain: close every worker pipe (their EOF signal), wait up to
    [grace] seconds, then SIGKILL stragglers.  Blocks. *)

val stats_json : t -> Arde.Json.t
