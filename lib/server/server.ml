(* The crash-only detection daemon: a domain-free supervisor event loop.
   See server.mli for the architecture and shutdown story. *)

module J = Arde.Json
module P = Protocol

type config = {
  socket_path : string;
  tcp : (string * int) option;
  workers : int;
  max_pending : int;
  max_frame : int;
  jobs : int;
  default_deadline_ms : int option;
  watchdog_ms : int;
  watchdog_grace_ms : int;
  restart_backoff_ms : int;
  restart_backoff_max_ms : int;
  breaker_threshold : int;
  breaker_window_s : float;
  spool_dir : string option;
  store_dir : string option;
  store_max_mb : int;
  chaos_plan : string;
  worker_exec : string option;
  log : string -> unit;
}

let config ?tcp ?(workers = 2) ?(max_pending = 64)
    ?(max_frame = P.default_max_frame) ?(jobs = 0) ?default_deadline_ms
    ?(watchdog_ms = 120_000) ?(watchdog_grace_ms = 2_000)
    ?(restart_backoff_ms = 100) ?(restart_backoff_max_ms = 5_000)
    ?(breaker_threshold = 5) ?(breaker_window_s = 10.) ?spool_dir ?store_dir
    ?(store_max_mb = Store.default_max_mb) ?(chaos_plan = "") ?worker_exec
    ?(log = ignore) ~socket_path () =
  {
    socket_path;
    tcp;
    workers = (if workers <= 0 then 2 else workers);
    max_pending;
    max_frame;
    jobs;
    default_deadline_ms;
    watchdog_ms;
    watchdog_grace_ms;
    restart_backoff_ms;
    restart_backoff_max_ms;
    breaker_threshold;
    breaker_window_s;
    spool_dir;
    store_dir;
    store_max_mb;
    chaos_plan;
    worker_exec;
    log;
  }

(* One client connection.  The supervisor is single-threaded, so no
   locks: writes are buffered in [c_out] and flushed as the socket
   accepts them. *)
type conn = {
  c_fd : Unix.file_descr;
  c_dec : P.decoder;
  c_out : Util.outbuf;
  mutable c_alive : bool;
  mutable c_wire : P.wire;
      (* responses follow each request's own wire; this is the fallback
         for errors with no request behind them (an oversized frame),
         flipped to [Binary] once the client says hello *)
}

type counters = {
  mutable received : int;
  mutable ok : int;
  mutable pings : int;
  mutable stats_reqs : int;
  mutable bad_frame : int;
  mutable bad_request : int;
  mutable overloaded : int;
  mutable rejected_draining : int;
  mutable internal_errors : int;
  mutable worker_crashed : int;
  mutable deadline_expired : int;
  mutable retries : int; (* requests that declared themselves a retry *)
  mutable spool_errors : int; (* journal writes that failed (best-effort) *)
}

type job = {
  j_id : int;
  j_conn : conn;
  j_wire : P.wire; (* the wire the request arrived on, for error replies *)
  j_req : P.run_request;
  j_raw : string; (* the wire request bytes, forwarded verbatim *)
  j_digest : string;
  j_deadline_at : float option; (* absolute expiry while still queued *)
  j_watch_s : float; (* watchdog budget once dispatched *)
}

type t = {
  cfg : config;
  listen_fds : Unix.file_descr list;
      (* the Unix socket, plus the TCP listener when configured; both
         accept into the same connection table and frame loop *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  sup : Supervisor.t;
  sched : job Scheduler.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  inflight : job option array; (* per worker slot *)
  (* A worker's [done] header whose response-bytes frame has not arrived
     yet: (job id, spool_error, outcome code, store delta), per slot. *)
  pending_done : (int * bool * string * J.t option) option array;
  counters : counters;
  started : float;
  drain_requested : bool Atomic.t; (* set from signal handlers *)
  mutable job_seq : int;
}

(* ------------------------------------------------------------------ *)
(* Plumbing                                                           *)

let close_conn t conn =
  if conn.c_alive then begin
    conn.c_alive <- false;
    try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end;
  Hashtbl.remove t.conns conn.c_fd

let send_bytes t conn payload =
  if conn.c_alive then begin
    Util.outbuf_push conn.c_out (P.frame payload);
    (* A client that stops reading must not pin response memory forever. *)
    if Util.outbuf_size conn.c_out > 4 * t.cfg.max_frame then begin
      t.cfg.log "dropping connection with an unread response backlog";
      close_conn t conn
    end
    else
      match Util.outbuf_flush conn.c_out conn.c_fd with
      | Util.Flushed | Util.Partial -> ()
      | Util.Peer_gone -> close_conn t conn
  end

let send ?(wire = P.Json) t conn json =
  send_bytes t conn (P.encode_response ~wire json);
  t.cfg.log
    (if P.response_ok json then "sent ok response"
     else
       match P.response_error json with
       | Some (code, _) -> "sent error response: " ^ code
       | None -> "sent response")

(* A worker-built response crosses the supervisor as opaque bytes — the
   outcome code travelled in the [done] header, so nothing here needs to
   parse a response that can be hundreds of kilobytes. *)
let send_raw t conn ~code raw =
  send_bytes t conn raw;
  t.cfg.log ("forwarded worker response: " ^ code)

let wake t =
  try ignore (Unix.write_substring t.wake_w "w" 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF | EINTR), _, _)
  -> ()

let initiate_drain t =
  Atomic.set t.drain_requested true;
  wake t

let handle_signals t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let h = Sys.Signal_handle (fun _ -> initiate_drain t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)

let stats_json t =
  let c = t.counters in
  let breaker_open = ref 0 in
  for i = 0 to Supervisor.n_workers t.sup - 1 do
    if (Supervisor.worker t.sup i).Supervisor.w_state = Supervisor.Broken then
      incr breaker_open
  done;
  let spool = Supervisor.spool t.sup in
  J.Obj
    [
      ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
      ( "requests",
        J.Obj
          [
            ("received", J.Int c.received);
            ("ok", J.Int c.ok);
            ("ping", J.Int c.pings);
            ("stats", J.Int c.stats_reqs);
            ("bad_frame", J.Int c.bad_frame);
            ("bad_request", J.Int c.bad_request);
            ("overloaded", J.Int c.overloaded);
            ("rejected_draining", J.Int c.rejected_draining);
            ("internal", J.Int c.internal_errors);
            ("worker_crashed", J.Int c.worker_crashed);
            ("deadline_expired", J.Int c.deadline_expired);
            ("retries", J.Int c.retries);
            ("spool_errors", J.Int c.spool_errors);
          ] );
      ( "queue",
        J.Obj
          [
            ("depth", J.Int (Scheduler.depth t.sched));
            ("in_flight", J.Int (Scheduler.in_flight t.sched));
            ("max_pending", J.Int t.cfg.max_pending);
            ("draining", J.Bool (Scheduler.draining t.sched));
            ("refused", J.Int (Scheduler.refused t.sched));
            ("cancelled", J.Int (Scheduler.cancelled t.sched));
          ] );
      ( "supervision",
        match Supervisor.stats_json t.sup with
        | J.Obj fields ->
            J.Obj (fields @ [ ("breaker_open", J.Int !breaker_open) ])
        | other -> other );
      ( "spool",
        J.Obj
          [
            ("dir", J.String (Spool.root spool));
            ("bundles", J.Int (List.length (Spool.bundles spool)));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)

let effective_deadline t (req : P.run_request) =
  match req.P.rq_deadline_ms with
  | Some _ as d -> d
  | None -> t.cfg.default_deadline_ms

let dispatch t =
  let now = Unix.gettimeofday () in
  for i = 0 to Supervisor.n_workers t.sup - 1 do
    if Supervisor.is_live t.sup i then begin
      let rec pump () =
        if not (Scheduler.busy t.sched ~slot:i) then
          match Scheduler.take t.sched ~slot:i with
          | None -> ()
          | Some job ->
              if not job.j_conn.c_alive then begin
                (* The client vanished while queued; executing would
                   waste a worker on an unanswerable request. *)
                Scheduler.finish t.sched ~slot:i;
                pump ()
              end
              else begin
                t.inflight.(i) <- Some job;
                Supervisor.note_dispatch t.sup i
                  ~kill_by:(now +. job.j_watch_s);
                (* Header frame, then the request bytes verbatim. *)
                Supervisor.send_to_worker t.sup i
                  (J.to_string
                     (P.job_frame ~job:job.j_id
                        ~digest:(Digest.to_hex job.j_digest)));
                Supervisor.send_to_worker t.sup i job.j_raw
              end
      in
      pump ()
    end
  done

(* Account a worker-reported outcome code against the counters. *)
let count_code t = function
  | "ok" -> t.counters.ok <- t.counters.ok + 1
  | "bad_request" -> t.counters.bad_request <- t.counters.bad_request + 1
  | _ -> t.counters.internal_errors <- t.counters.internal_errors + 1

(* ------------------------------------------------------------------ *)
(* Client requests                                                    *)

let handle_payload t conn payload =
  t.counters.received <- t.counters.received + 1;
  let wire = P.payload_wire payload in
  match P.parse_request payload with
  | Error (id, code, msg) ->
      (match code with
      | P.Bad_frame -> t.counters.bad_frame <- t.counters.bad_frame + 1
      | _ -> t.counters.bad_request <- t.counters.bad_request + 1);
      send ~wire t conn (P.error_response ~id code msg)
  | Ok P.Hello ->
      (* Negotiation: remember the wire for request-less errors and
         mirror the frame cap so the client can size its decoder. *)
      conn.c_wire <- P.Binary;
      send_bytes t conn (P.binary_hello_ack ~max_frame:t.cfg.max_frame);
      t.cfg.log "negotiated binary wire"
  | Ok (P.Ping id) ->
      t.counters.pings <- t.counters.pings + 1;
      send ~wire t conn (P.ok_response ~id [ ("pong", J.Bool true) ])
  | Ok (P.Stats id) ->
      t.counters.stats_reqs <- t.counters.stats_reqs + 1;
      send ~wire t conn (P.ok_response ~id [ ("stats", stats_json t) ])
  | Ok (P.Run req) -> (
      if req.P.rq_retry > 0 then
        t.counters.retries <- t.counters.retries + 1;
      let digest =
        (* Affinity key: the program digest, so a trace of a program the
           farm has seen lands on the worker whose caches are warm for
           it.  A trace whose header cannot be read still routes (by the
           raw bytes) — the worker, not the router, rejects it. *)
        match req.P.rq_payload with
        | P.Rq_program { rp_program; _ } -> Digest.string rp_program
        | P.Rq_trace trace -> (
            match Arde.Trace_codec.read_header trace with
            | Ok h -> (
                match Digest.from_hex h.Arde.Trace_codec.h_digest with
                | d -> d
                | exception Invalid_argument _ -> Digest.string trace)
            | Error _ -> Digest.string trace)
      in
      let preferred = Hashtbl.hash digest mod Supervisor.n_workers t.sup in
      match Supervisor.route t.sup ~preferred with
      | None ->
          (* Every slot's circuit is open: refuse fast and honestly
             rather than queueing behind a cooldown. *)
          t.counters.worker_crashed <- t.counters.worker_crashed + 1;
          send ~wire t conn
            (P.error_response ~id:req.P.rq_id P.Worker_crashed
               "all worker slots are broken (restart circuit open); retry \
                later")
      | Some slot -> (
          let now = Unix.gettimeofday () in
          let deadline = effective_deadline t req in
          let job =
            {
              j_id =
                (t.job_seq <- t.job_seq + 1;
                 t.job_seq);
              j_conn = conn;
              j_wire = wire;
              j_req = req;
              j_raw = payload;
              j_digest = digest;
              j_deadline_at =
                Option.map
                  (fun ms -> now +. (float_of_int ms /. 1000.))
                  deadline;
              j_watch_s =
                (match deadline with
                | Some ms ->
                    float_of_int (ms + t.cfg.watchdog_grace_ms) /. 1000.
                | None -> float_of_int t.cfg.watchdog_ms /. 1000.);
            }
          in
          match Scheduler.submit t.sched ~slot job with
          | Scheduler.Accepted -> dispatch t
          | Scheduler.Overloaded ->
              t.counters.overloaded <- t.counters.overloaded + 1;
              send ~wire t conn
                (P.error_response ~id:req.P.rq_id P.Overloaded
                   (Printf.sprintf "queue full (%d pending)"
                      t.cfg.max_pending))
          | Scheduler.Draining ->
              t.counters.rejected_draining <-
                t.counters.rejected_draining + 1;
              send ~wire t conn
                (P.error_response ~id:req.P.rq_id P.Draining
                   "server is draining and refuses new work")))

let read_buf = Bytes.create 65536

let handle_conn_readable t conn =
  match Unix.read conn.c_fd read_buf 0 (Bytes.length read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
      close_conn t conn
  | 0 -> close_conn t conn (* EOF: mid-frame disconnects land here too *)
  | n ->
      P.feed conn.c_dec read_buf 0 n;
      let rec drain_frames () =
        match P.next_frame conn.c_dec with
        | P.Frame payload ->
            handle_payload t conn payload;
            if conn.c_alive then drain_frames ()
        | P.Await -> ()
        | P.Too_large announced ->
            t.counters.received <- t.counters.received + 1;
            t.counters.bad_frame <- t.counters.bad_frame + 1;
            send ~wire:conn.c_wire t conn
              (P.error_response ~id:J.Null P.Bad_frame
                 (Printf.sprintf
                    "frame of %d bytes exceeds the %d-byte limit" announced
                    t.cfg.max_frame));
            (* The stream is unframeable from here on. *)
            close_conn t conn
      in
      drain_frames ()

let accept_conn t listen_fd =
  match Util.accept listen_fd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | fd, peer ->
      Unix.set_nonblock fd;
      (* Request/response over small frames: Nagle would add whole RTTs
         of latency on the TCP listener, so switch it off. *)
      (match peer with
      | Unix.ADDR_INET _ -> (
          try Unix.setsockopt fd Unix.TCP_NODELAY true
          with Unix.Unix_error _ -> ())
      | _ -> ());
      let conn =
        {
          c_fd = fd;
          c_dec = P.decoder ~max_frame:t.cfg.max_frame ();
          c_out = Util.outbuf ();
          c_alive = true;
          c_wire = P.Json;
        }
      in
      if Scheduler.draining t.sched then begin
        (* Refuse with a structured error rather than a silent close. *)
        t.counters.rejected_draining <- t.counters.rejected_draining + 1;
        Util.outbuf_push conn.c_out
          (P.frame
             (J.to_string
                (P.error_response ~id:J.Null P.Draining
                   "server is draining and refuses new connections")));
        ignore (Util.outbuf_flush conn.c_out fd);
        conn.c_alive <- false;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Hashtbl.replace t.conns fd conn;
        t.cfg.log "accepted connection"
      end

let drain_wake_pipe t =
  match Unix.read t.wake_r read_buf 0 64 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Worker events                                                      *)

(* The response-bytes frame that completes a [done] header has arrived:
   settle the slot and forward the bytes untouched. *)
let complete_job t i ~job_id ~spool_error ~code raw =
  match t.inflight.(i) with
  | Some job when job.j_id = job_id ->
      t.inflight.(i) <- None;
      Scheduler.finish t.sched ~slot:i;
      Supervisor.note_done t.sup i;
      if spool_error then begin
        t.counters.spool_errors <- t.counters.spool_errors + 1;
        t.cfg.log (Printf.sprintf "worker %d could not journal a request" i)
      end;
      count_code t code;
      send_raw t job.j_conn ~code raw;
      dispatch t
  | Some _ | None ->
      t.cfg.log
        (Printf.sprintf "worker %d sent a stray done frame (job %d)" i job_id)

let handle_worker_msg t i msg =
  match msg with
  | P.W_hello _ ->
      Supervisor.note_hello t.sup i;
      dispatch t
  | P.W_done { wd_job; wd_spool_error; wd_code; wd_store } ->
      (* The response bytes follow in the worker's very next frame. *)
      t.pending_done.(i) <- Some (wd_job, wd_spool_error, wd_code, wd_store)

let handle_worker_readable t i =
  let w = Supervisor.worker t.sup i in
  match w.Supervisor.w_fd with
  | None -> ()
  | Some fd -> (
      match Unix.read fd read_buf 0 (Bytes.length read_buf) with
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          w.Supervisor.w_fd <- None (* the reaper finishes the job *)
      | 0 ->
          (* Worker exited (or tore its stream); stop selecting on the
             fd and let [reap] classify the death. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          w.Supervisor.w_fd <- None
      | n ->
          P.feed w.Supervisor.w_dec read_buf 0 n;
          let rec drain_frames () =
            match P.next_frame w.Supervisor.w_dec with
            | P.Frame payload -> (
                match t.pending_done.(i) with
                | Some (job_id, spool_error, code, store) ->
                    t.pending_done.(i) <- None;
                    (match store with
                    | Some delta -> Supervisor.note_store t.sup delta
                    | None -> ());
                    complete_job t i ~job_id ~spool_error ~code payload;
                    drain_frames ()
                | None -> (
                    match P.parse_worker_msg payload with
                    | Ok msg ->
                        handle_worker_msg t i msg;
                        drain_frames ()
                    | Error e -> (
                        (* A garbled control stream is a crash in disguise. *)
                        t.cfg.log
                          (Printf.sprintf "worker %d sent a garbled frame: %s"
                             i e);
                        w.Supervisor.w_pending_reason <-
                          Some ("garbled control frame: " ^ e);
                        if w.Supervisor.w_pid >= 0 then
                          try Unix.kill w.Supervisor.w_pid Sys.sigkill
                          with Unix.Unix_error _ -> ())))
            | P.Await -> ()
            | P.Too_large _ ->
                t.cfg.log
                  (Printf.sprintf "worker %d sent an oversized frame" i);
                w.Supervisor.w_pending_reason <- Some "oversized control frame";
                if w.Supervisor.w_pid >= 0 then (
                  try Unix.kill w.Supervisor.w_pid Sys.sigkill
                  with Unix.Unix_error _ -> ())
          in
          drain_frames ())

(* Re-route a dead slot's queued jobs.  Prefer a live slot so the work
   is served promptly; fall back to any slot whose circuit is closed
   (it will restart); refuse honestly only when nothing can run. *)
let reroute_queued t ~dead:i ~draining =
  let n = Supervisor.n_workers t.sup in
  let queued = Scheduler.drain_slot t.sched ~slot:i in
  List.iter
    (fun job ->
      let preferred = Hashtbl.hash job.j_digest mod n in
      let live_slot =
        let rec scan k =
          if k = n then None
          else
            let s = (preferred + k) mod n in
            if Supervisor.is_live t.sup s then Some s else scan (k + 1)
        in
        scan 0
      in
      let target =
        match live_slot with
        | Some _ as s -> s
        | None -> if draining then None else Supervisor.route t.sup ~preferred
      in
      match target with
      | Some slot -> Scheduler.enqueue t.sched ~slot job
      | None ->
          t.counters.worker_crashed <- t.counters.worker_crashed + 1;
          send ~wire:job.j_wire t job.j_conn
            (P.error_response ~id:job.j_req.P.rq_id P.Worker_crashed
               "the worker slot for this request died and no other slot can \
                take it"))
    queued

let handle_deaths t deaths ~draining =
  List.iter
    (fun (d : Supervisor.death) ->
      let i = d.Supervisor.d_index in
      (* A [done] header with no response bytes behind it died with the
         worker; never let it consume the respawned worker's hello. *)
      t.pending_done.(i) <- None;
      if d.Supervisor.d_crash then begin
        (match t.inflight.(i) with
        | Some job ->
            t.inflight.(i) <- None;
            Scheduler.finish t.sched ~slot:i;
            t.counters.worker_crashed <- t.counters.worker_crashed + 1;
            let msg =
              Printf.sprintf "worker %d died mid-request (%s)%s" i
                d.Supervisor.d_reason
                (match d.Supervisor.d_bundle with
                | Some path -> "; request journaled to " ^ path
                | None -> "")
            in
            send ~wire:job.j_wire t job.j_conn
              (P.error_response ~id:job.j_req.P.rq_id P.Worker_crashed msg)
        | None -> ());
        reroute_queued t ~dead:i ~draining
      end)
    deaths;
  if deaths <> [] then dispatch t

let expire_queued_deadlines t ~now =
  let expired =
    Scheduler.remove t.sched ~pred:(fun job ->
        match job.j_deadline_at with
        | Some at -> at <= now
        | None -> false)
  in
  List.iter
    (fun job ->
      t.counters.deadline_expired <- t.counters.deadline_expired + 1;
      send ~wire:job.j_wire t job.j_conn
        (P.error_response ~id:job.j_req.P.rq_id P.Deadline_expired
           "deadline elapsed before the request was dispatched to a worker"))
    expired

(* ------------------------------------------------------------------ *)
(* The event loop                                                     *)

let select_sets t =
  let reads = ref (t.wake_r :: t.listen_fds) in
  let writes = ref [] in
  Hashtbl.iter
    (fun fd conn ->
      reads := fd :: !reads;
      if not (Util.outbuf_is_empty conn.c_out) then writes := fd :: !writes)
    t.conns;
  for i = 0 to Supervisor.n_workers t.sup - 1 do
    let w = Supervisor.worker t.sup i in
    match w.Supervisor.w_fd with
    | Some fd ->
        reads := fd :: !reads;
        if not (Util.outbuf_is_empty w.Supervisor.w_out) then
          writes := fd :: !writes
    | None -> ()
  done;
  (!reads, !writes)

let worker_index_of_fd t fd =
  let n = Supervisor.n_workers t.sup in
  let rec go i =
    if i = n then None
    else
      match (Supervisor.worker t.sup i).Supervisor.w_fd with
      | Some wfd when wfd = fd -> Some i
      | _ -> go (i + 1)
  in
  go 0

let handle_writable t fd =
  match Hashtbl.find_opt t.conns fd with
  | Some conn -> (
      match Util.outbuf_flush conn.c_out conn.c_fd with
      | Util.Flushed | Util.Partial -> ()
      | Util.Peer_gone -> close_conn t conn)
  | None -> (
      match worker_index_of_fd t fd with
      | Some i -> (
          let w = Supervisor.worker t.sup i in
          match Util.outbuf_flush w.Supervisor.w_out fd with
          | Util.Flushed | Util.Partial -> ()
          | Util.Peer_gone -> () (* the reaper owns worker death *))
      | None -> ())

(* After a drain completes, give buffered responses a bounded window to
   reach slow clients before the sockets close under them. *)
let final_flush t =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let pending () =
    Hashtbl.fold
      (fun fd conn acc ->
        if conn.c_alive && not (Util.outbuf_is_empty conn.c_out) then
          fd :: acc
        else acc)
      t.conns []
  in
  let rec loop () =
    match pending () with
    | [] -> ()
    | fds when Unix.gettimeofday () < deadline -> (
        match Unix.select [] fds [] 0.1 with
        | exception Unix.Unix_error (EINTR, _, _) -> loop ()
        | _, writable, _ ->
            List.iter (fun fd -> handle_writable t fd) writable;
            loop ())
    | _ -> ()
  in
  loop ()

let run t =
  let rec loop () =
    let draining = Scheduler.draining t.sched in
    if Atomic.get t.drain_requested && not draining then begin
      t.cfg.log "drain initiated";
      Scheduler.begin_drain t.sched
    end;
    let draining = Scheduler.draining t.sched in
    if draining && Scheduler.idle t.sched then ()
    else begin
      let now = Unix.gettimeofday () in
      List.iter (fun i -> Supervisor.kill_watchdog t.sup i)
        (Supervisor.due_watchdog t.sup ~now);
      expire_queued_deadlines t ~now;
      Supervisor.respawn_due t.sup ~now ~draining;
      dispatch t;
      let timeout =
        let next = Supervisor.next_timer t.sup in
        if next = infinity then 0.2 else max 0.005 (min 0.2 (next -. now))
      in
      let reads, writes = select_sets t in
      (match Unix.select reads writes [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error (EBADF, _, _) ->
          (* A worker died between set construction and select; the
             reaper below clears its fd. *)
          ()
      | ready_r, ready_w, _ ->
          List.iter
            (fun fd ->
              if List.memq fd t.listen_fds then accept_conn t fd
              else if fd = t.wake_r then drain_wake_pipe t
              else
                match Hashtbl.find_opt t.conns fd with
                | Some conn -> handle_conn_readable t conn
                | None -> (
                    match worker_index_of_fd t fd with
                    | Some i -> handle_worker_readable t i
                    | None -> ()))
            ready_r;
          List.iter (fun fd -> handle_writable t fd) ready_w);
      let now = Unix.gettimeofday () in
      let deaths = Supervisor.reap t.sup ~now ~draining in
      handle_deaths t deaths ~draining;
      loop ()
    end
  in
  loop ();
  final_flush t;
  Supervisor.shutdown t.sup ~grace:5.0;
  Hashtbl.iter
    (fun _ conn ->
      if conn.c_alive then begin
        conn.c_alive <- false;
        try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
      end)
    t.conns;
  Hashtbl.reset t.conns;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listen_fds;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  t.cfg.log "server stopped"

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)

let socket_in_use path =
  (* A leftover socket file from a dead server must not block startup;
     a live server on the same path must. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Util.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false)

let clear_stale_socket path =
  if not (Sys.file_exists path) then Ok ()
  else if socket_in_use path then
    Error (Printf.sprintf "socket %s is in use by a live server" path)
  else begin
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    Ok ()
  end

let bind_tcp ~host ~port =
  match
    let addr = Util.resolve_host host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port));
       Unix.listen fd 64;
       Unix.set_nonblock fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (err, fn, _) ->
      Error
        (Printf.sprintf "cannot bind %s:%d: %s (%s)" host port
           (Unix.error_message err) fn)
  | exception Not_found -> Error ("cannot resolve host " ^ host)

(* The TCP endpoint actually bound — the port matters when the config
   asked for 0 (ephemeral). *)
let tcp_endpoint t =
  match (t.cfg.tcp, t.listen_fds) with
  | Some _, [ _; fd ] -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (addr, port) ->
          Some (Unix.string_of_inet_addr addr, port)
      | _ | (exception Unix.Unix_error _) -> None)
  | _ -> None

let create cfg =
  let ( let* ) = Result.bind in
  let* () = clear_stale_socket cfg.socket_path in
  let* () =
    match Arde.Chaos.Serve.parse cfg.chaos_plan with
    | Ok _ -> Ok ()
    | Error e -> Error ("chaos plan: " ^ e)
  in
  let spool_root =
    Option.value cfg.spool_dir ~default:(cfg.socket_path ^ ".spool")
  in
  let* spool = Spool.create ~root:spool_root in
  let* tcp_fd =
    match cfg.tcp with
    | None -> Ok None
    | Some (host, port) -> Result.map Option.some (bind_tcp ~host ~port)
  in
  let close_tcp () =
    match tcp_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ()
  in
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
       Unix.listen fd 64;
       Unix.set_nonblock fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (err, fn, _) ->
      close_tcp ();
      Error
        (Printf.sprintf "cannot bind %s: %s (%s)" cfg.socket_path
           (Unix.error_message err) fn)
  | listen_fd -> (
      let knobs =
        {
          Supervisor.k_exec =
            Option.value cfg.worker_exec ~default:Sys.executable_name;
          k_spool_root = spool_root;
          k_jobs = cfg.jobs;
          k_max_frame = cfg.max_frame;
          k_chaos_plan = cfg.chaos_plan;
          k_store_dir = Option.value cfg.store_dir ~default:"";
          k_store_max_mb = cfg.store_max_mb;
          k_restart_backoff_ms = cfg.restart_backoff_ms;
          k_restart_backoff_max_ms = cfg.restart_backoff_max_ms;
          k_breaker_threshold = cfg.breaker_threshold;
          k_breaker_window_s = cfg.breaker_window_s;
          k_log = cfg.log;
        }
      in
      match Supervisor.create ~knobs ~spool ~workers:cfg.workers with
      | exception e ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          close_tcp ();
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
          Error ("cannot spawn workers: " ^ Printexc.to_string e)
      | sup ->
          let wake_r, wake_w = Unix.pipe () in
          Unix.set_nonblock wake_w;
          Unix.set_nonblock wake_r;
          let t =
            {
              cfg;
              listen_fds =
                (listen_fd
                :: (match tcp_fd with Some fd -> [ fd ] | None -> []));
              wake_r;
              wake_w;
              sup;
              sched =
                Scheduler.create ~workers:cfg.workers
                  ~max_pending:cfg.max_pending;
              conns = Hashtbl.create 16;
              inflight = Array.make (Supervisor.n_workers sup) None;
              pending_done = Array.make (Supervisor.n_workers sup) None;
              counters =
                {
                  received = 0;
                  ok = 0;
                  pings = 0;
                  stats_reqs = 0;
                  bad_frame = 0;
                  bad_request = 0;
                  overloaded = 0;
                  rejected_draining = 0;
                  internal_errors = 0;
                  worker_crashed = 0;
                  deadline_expired = 0;
                  retries = 0;
                  spool_errors = 0;
                };
              started = Unix.gettimeofday ();
              drain_requested = Atomic.make false;
              job_seq = 0;
            }
          in
          t.cfg.log
            (Printf.sprintf "listening on %s%s (%d workers)" cfg.socket_path
               (* Report the bound address, not the requested one — the
                  difference is the whole point of asking for port 0. *)
               (match tcp_endpoint t with
               | Some (h, p) -> Printf.sprintf " and tcp %s:%d" h p
               | None -> "")
               (Supervisor.n_workers sup));
          Ok t)
