(* The resident detection daemon.  See server.mli for the threading and
   shutdown story. *)

module J = Arde.Json
module P = Protocol

type config = {
  socket_path : string;
  max_pending : int;
  max_frame : int;
  jobs : int;
  default_deadline_ms : int option;
  log : string -> unit;
}

let config ?(max_pending = 64) ?(max_frame = P.default_max_frame) ?(jobs = 0)
    ?default_deadline_ms ?(log = ignore) ~socket_path () =
  { socket_path; max_pending; max_frame; jobs; default_deadline_ms; log }

(* One client connection.  The worker domain and the connection loop
   both write responses; [wm] serializes them so frames never interleave.
   Only the connection loop closes the fd (after taking [wm]), so a
   writer holding [wm] with [alive = true] holds a valid fd. *)
type conn = {
  c_fd : Unix.file_descr;
  c_dec : P.decoder;
  c_wm : Mutex.t;
  mutable c_alive : bool;
}

type counters = {
  received : int Atomic.t;
  ok : int Atomic.t;
  pings : int Atomic.t;
  stats_reqs : int Atomic.t;
  bad_frame : int Atomic.t;
  bad_request : int Atomic.t;
  overloaded : int Atomic.t;
  rejected_draining : int Atomic.t;
  internal_errors : int Atomic.t;
  deadline_cancelled : int Atomic.t;
      (* run requests whose deadline cancelled at least one seed *)
}

type job = { j_conn : conn; j_req : P.run_request }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  sched : job Scheduler.t;
  pool : Arde.Domain_pool.pool;
  conns : (Unix.file_descr, conn) Hashtbl.t; (* connection loop only *)
  counters : counters;
  started : float;
  drain_requested : bool Atomic.t;
  programs : (string, Arde.Types.program) Hashtbl.t; (* text digest -> AST *)
  programs_m : Mutex.t;
  program_hits : int Atomic.t;
  program_misses : int Atomic.t;
  mutable worker : unit Domain.t option;
}

(* ------------------------------------------------------------------ *)
(* Plumbing                                                           *)

let send t conn json =
  Mutex.lock conn.c_wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.c_wm)
    (fun () ->
      if conn.c_alive then
        try P.write_frame conn.c_fd (J.to_string json)
        with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          (* The client went away; the connection loop will reap the fd. *)
          conn.c_alive <- false);
  t.cfg.log
    (if P.response_ok json then "sent ok response"
     else
       match P.response_error json with
       | Some (code, _) -> "sent error response: " ^ code
       | None -> "sent response")

let wake t =
  try ignore (Unix.write_substring t.wake_w "w" 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

let initiate_drain t =
  Atomic.set t.drain_requested true;
  wake t

let handle_signals t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let h = Sys.Signal_handle (fun _ -> initiate_drain t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

(* ------------------------------------------------------------------ *)
(* Worker: executes run requests one at a time                        *)

(* The request-text digest keys both the server's parsed-program cache
   and (as [?program_digest]) the analysis cache's prepared entries, so a
   repeat submission re-parses nothing and re-analyzes nothing: it goes
   straight from the digest to the compiled, instrumented form. *)
let lookup_program t text =
  let digest = Digest.string text in
  let cached =
    Mutex.lock t.programs_m;
    let v = Hashtbl.find_opt t.programs digest in
    Mutex.unlock t.programs_m;
    v
  in
  match cached with
  | Some p ->
      Atomic.incr t.program_hits;
      Ok (digest, p)
  | None -> (
      Atomic.incr t.program_misses;
      match Arde.Parse.program text with
      | Error e -> Error ("program: " ^ Arde.Parse.error_to_string e)
      | Ok p -> (
          match Arde.Validate.check p with
          | Error es ->
              Error
                ("program: "
                ^ String.concat "; "
                    (List.map Arde.Validate.error_to_string es))
          | Ok () ->
              Mutex.lock t.programs_m;
              Hashtbl.replace t.programs digest p;
              Mutex.unlock t.programs_m;
              Ok (digest, p)))

let execute t job =
  let req = job.j_req in
  let response =
    match lookup_program t req.P.rq_program with
    | Error msg ->
        Atomic.incr t.counters.bad_request;
        P.error_response ~id:req.P.rq_id P.Bad_request msg
    | Ok (digest, program) -> (
        let before = Arde.Analysis_cache.stats () in
        let deadline =
          match req.P.rq_deadline_ms with
          | Some _ as d -> d
          | None -> t.cfg.default_deadline_ms
        in
        let started = Unix.gettimeofday () in
        let should_stop =
          match deadline with
          | None -> fun () -> false
          | Some ms ->
              fun () ->
                (Unix.gettimeofday () -. started) *. 1000. > float_of_int ms
        in
        match
          Arde.detect ~options:req.P.rq_options ~pool:t.pool ~should_stop
            ~program_digest:digest req.P.rq_mode program
        with
        | result ->
            let after = Arde.Analysis_cache.stats () in
            let delta = Arde.Analysis_cache.stats_delta ~before ~after in
            if result.Arde.Driver.health.Arde.Driver.h_cancelled > 0 then
              Atomic.incr t.counters.deadline_cancelled;
            Atomic.incr t.counters.ok;
            P.ok_response ~id:req.P.rq_id
              [
                ("result", Arde.Driver.result_to_json result);
                ("analysis_cache", Arde.Analysis_cache.stats_to_json delta);
              ]
        | exception e ->
            Atomic.incr t.counters.internal_errors;
            P.error_response ~id:req.P.rq_id P.Internal (Printexc.to_string e))
  in
  send t job.j_conn response

let worker_loop t =
  let rec loop () =
    match Scheduler.next t.sched with
    | None -> ()
    | Some job ->
        (try execute t job
         with e ->
           Atomic.incr t.counters.internal_errors;
           t.cfg.log ("worker exception: " ^ Printexc.to_string e));
        Scheduler.job_done t.sched;
        wake t;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)

let stats_json t =
  let c n a = (n, J.Int (Atomic.get a)) in
  J.Obj
    [
      ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
      ( "requests",
        J.Obj
          [
            c "received" t.counters.received;
            c "ok" t.counters.ok;
            c "ping" t.counters.pings;
            c "stats" t.counters.stats_reqs;
            c "bad_frame" t.counters.bad_frame;
            c "bad_request" t.counters.bad_request;
            c "overloaded" t.counters.overloaded;
            c "rejected_draining" t.counters.rejected_draining;
            c "internal" t.counters.internal_errors;
            c "deadline_cancelled" t.counters.deadline_cancelled;
          ] );
      ( "queue",
        J.Obj
          [
            ("depth", J.Int (Scheduler.depth t.sched));
            ("in_flight", J.Int (Scheduler.in_flight t.sched));
            ("max_pending", J.Int t.cfg.max_pending);
            ("draining", J.Bool (Scheduler.draining t.sched));
          ] );
      ( "programs",
        J.Obj
          [
            ( "cached",
              J.Int
                (Mutex.lock t.programs_m;
                 let n = Hashtbl.length t.programs in
                 Mutex.unlock t.programs_m;
                 n) );
            c "hits" t.program_hits;
            c "misses" t.program_misses;
          ] );
      ("analysis_cache", Arde.Analysis_cache.stats_to_json (Arde.Analysis_cache.stats ()));
      ("pool_width", J.Int (Arde.Domain_pool.width t.pool));
    ]

(* ------------------------------------------------------------------ *)
(* Connection loop                                                    *)

let close_conn t conn =
  Mutex.lock conn.c_wm;
  if conn.c_alive then begin
    conn.c_alive <- false;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock conn.c_wm;
  Hashtbl.remove t.conns conn.c_fd

let handle_payload t conn payload =
  Atomic.incr t.counters.received;
  match P.parse_request payload with
  | Error (id, code, msg) ->
      (match code with
      | P.Bad_frame -> Atomic.incr t.counters.bad_frame
      | _ -> Atomic.incr t.counters.bad_request);
      send t conn (P.error_response ~id code msg)
  | Ok (P.Ping id) ->
      Atomic.incr t.counters.pings;
      send t conn (P.ok_response ~id [ ("pong", J.Bool true) ])
  | Ok (P.Stats id) ->
      Atomic.incr t.counters.stats_reqs;
      send t conn (P.ok_response ~id [ ("stats", stats_json t) ])
  | Ok (P.Run req) -> (
      match Scheduler.submit t.sched { j_conn = conn; j_req = req } with
      | Scheduler.Accepted -> ()
      | Scheduler.Overloaded ->
          Atomic.incr t.counters.overloaded;
          send t conn
            (P.error_response ~id:req.P.rq_id P.Overloaded
               (Printf.sprintf "queue full (%d pending)" t.cfg.max_pending))
      | Scheduler.Draining ->
          Atomic.incr t.counters.rejected_draining;
          send t conn
            (P.error_response ~id:req.P.rq_id P.Draining
               "server is draining and refuses new work"))

let read_buf = Bytes.create 65536

let handle_readable t conn =
  match Unix.read conn.c_fd read_buf 0 (Bytes.length read_buf) with
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
      close_conn t conn
  | 0 -> close_conn t conn (* EOF: mid-frame disconnects land here too *)
  | n ->
      P.feed conn.c_dec read_buf 0 n;
      let rec drain_frames () =
        match P.next_frame conn.c_dec with
        | P.Frame payload ->
            handle_payload t conn payload;
            if conn.c_alive then drain_frames ()
        | P.Await -> ()
        | P.Too_large announced ->
            Atomic.incr t.counters.received;
            Atomic.incr t.counters.bad_frame;
            send t conn
              (P.error_response ~id:J.Null P.Bad_frame
                 (Printf.sprintf
                    "frame of %d bytes exceeds the %d-byte limit" announced
                    t.cfg.max_frame));
            (* The stream is unframeable from here on. *)
            close_conn t conn
      in
      drain_frames ()

let accept_conn t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | fd, _ ->
      let conn =
        {
          c_fd = fd;
          c_dec = P.decoder ~max_frame:t.cfg.max_frame ();
          c_wm = Mutex.create ();
          c_alive = true;
        }
      in
      if Scheduler.draining t.sched then begin
        (* Refuse with a structured error rather than a silent close. *)
        Atomic.incr t.counters.rejected_draining;
        send t conn
          (P.error_response ~id:J.Null P.Draining
             "server is draining and refuses new connections");
        Mutex.lock conn.c_wm;
        conn.c_alive <- false;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Mutex.unlock conn.c_wm
      end
      else begin
        Hashtbl.replace t.conns fd conn;
        t.cfg.log "accepted connection"
      end

let drain_wake_pipe t =
  match Unix.read t.wake_r read_buf 0 64 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let run t =
  let rec loop () =
    if Atomic.get t.drain_requested && not (Scheduler.draining t.sched)
    then begin
      t.cfg.log "drain initiated";
      Scheduler.begin_drain t.sched
    end;
    if Scheduler.draining t.sched && Scheduler.idle t.sched then ()
    else begin
      let fds =
        t.listen_fd :: t.wake_r
        :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns []
      in
      (match Unix.select fds [] [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              if fd = t.listen_fd then accept_conn t
              else if fd = t.wake_r then drain_wake_pipe t
              else
                match Hashtbl.find_opt t.conns fd with
                | Some conn -> handle_readable t conn
                | None -> ())
            ready);
      loop ()
    end
  in
  loop ();
  (* Drained: the worker's queue is empty, so [next] returns None. *)
  (match t.worker with
  | Some d ->
      Domain.join d;
      t.worker <- None
  | None -> ());
  Hashtbl.iter (fun _ conn ->
      Mutex.lock conn.c_wm;
      if conn.c_alive then begin
        conn.c_alive <- false;
        try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
      end;
      Mutex.unlock conn.c_wm)
    t.conns;
  Hashtbl.reset t.conns;
  Arde.Domain_pool.shutdown t.pool;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  t.cfg.log "server stopped"

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)

let socket_in_use path =
  (* A leftover socket file from a dead server must not block startup;
     a live server on the same path must. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false)

let clear_stale_socket path =
  if not (Sys.file_exists path) then Ok ()
  else if socket_in_use path then
    Error (Printf.sprintf "socket %s is in use by a live server" path)
  else begin
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    Ok ()
  end

let create cfg =
  let path = cfg.socket_path in
  match clear_stale_socket path with
  | Error e -> Error e
  | Ok () -> (
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Error
        (Printf.sprintf "cannot bind %s: %s (%s)" path
           (Unix.error_message err) fn)
  | listen_fd ->
      let wake_r, wake_w = Unix.pipe () in
      Unix.set_nonblock wake_w;
      Unix.set_nonblock wake_r;
      let jobs =
        if cfg.jobs <= 0 then Arde.Domain_pool.default_jobs () else cfg.jobs
      in
      let t =
        {
          cfg;
          listen_fd;
          wake_r;
          wake_w;
          sched = Scheduler.create ~max_pending:cfg.max_pending;
          pool = Arde.Domain_pool.create ~jobs;
          conns = Hashtbl.create 16;
          counters =
            {
              received = Atomic.make 0;
              ok = Atomic.make 0;
              pings = Atomic.make 0;
              stats_reqs = Atomic.make 0;
              bad_frame = Atomic.make 0;
              bad_request = Atomic.make 0;
              overloaded = Atomic.make 0;
              rejected_draining = Atomic.make 0;
              internal_errors = Atomic.make 0;
              deadline_cancelled = Atomic.make 0;
            };
          started = Unix.gettimeofday ();
          drain_requested = Atomic.make false;
          programs = Hashtbl.create 16;
          programs_m = Mutex.create ();
          program_hits = Atomic.make 0;
          program_misses = Atomic.make 0;
          worker = None;
        }
      in
      t.worker <- Some (Domain.spawn (fun () -> worker_loop t));
      t.cfg.log (Printf.sprintf "listening on %s" path);
      Ok t)
