(* On-disk content-addressed store for prepared bundles.  See store.mli. *)

module J = Arde.Json
module Tc = Arde.Trace_codec
module AC = Arde.Analysis_cache
module M = Arde.Machine

let magic = "ARDEBNDL"
let version = 1
let suffix = ".bundle"

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_saves : int;
  st_evictions : int;
  st_corrupt : int;
  st_errors : int;
}

let zero_stats =
  {
    st_hits = 0;
    st_misses = 0;
    st_saves = 0;
    st_evictions = 0;
    st_corrupt = 0;
    st_errors = 0;
  }

let stats_delta ~before ~after =
  {
    st_hits = after.st_hits - before.st_hits;
    st_misses = after.st_misses - before.st_misses;
    st_saves = after.st_saves - before.st_saves;
    st_evictions = after.st_evictions - before.st_evictions;
    st_corrupt = after.st_corrupt - before.st_corrupt;
    st_errors = after.st_errors - before.st_errors;
  }

let stats_to_json s =
  J.Obj
    [
      ("disk_hits", J.Int s.st_hits);
      ("disk_misses", J.Int s.st_misses);
      ("saves", J.Int s.st_saves);
      ("evictions", J.Int s.st_evictions);
      ("corrupt_recovered", J.Int s.st_corrupt);
      ("store_errors", J.Int s.st_errors);
    ]

let stats_of_json j =
  let int name = match J.member name j with Some (J.Int n) -> n | _ -> 0 in
  {
    st_hits = int "disk_hits";
    st_misses = int "disk_misses";
    st_saves = int "saves";
    st_evictions = int "evictions";
    st_corrupt = int "corrupt_recovered";
    st_errors = int "store_errors";
  }

let stats_add a b =
  {
    st_hits = a.st_hits + b.st_hits;
    st_misses = a.st_misses + b.st_misses;
    st_saves = a.st_saves + b.st_saves;
    st_evictions = a.st_evictions + b.st_evictions;
    st_corrupt = a.st_corrupt + b.st_corrupt;
    st_errors = a.st_errors + b.st_errors;
  }

type t = {
  dir : string;
  max_bytes : int;
  lock : Mutex.t; (* counters + sweep; entry I/O itself is lock-free *)
  mutable hits : int;
  mutable misses : int;
  mutable saves : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable errors : int;
}

let dir t = t.dir
let default_max_mb = 512

let create ?(max_mb = default_max_mb) ~dir () =
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o700;
    if not (Sys.is_directory dir) then failwith (dir ^ ": not a directory")
  with
  | () ->
      Ok
        {
          dir;
          max_bytes = max_mb * 1024 * 1024;
          lock = Mutex.create ();
          hits = 0;
          misses = 0;
          saves = 0;
          evictions = 0;
          corrupt = 0;
          errors = 0;
        }
  | exception Unix.Unix_error (err, fn, _) ->
      Error
        (Printf.sprintf "store %s: %s: %s" dir fn (Unix.error_message err))
  | exception Failure e -> Error ("store " ^ e)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stats t =
  locked t (fun () ->
      {
        st_hits = t.hits;
        st_misses = t.misses;
        st_saves = t.saves;
        st_evictions = t.evictions;
        st_corrupt = t.corrupt;
        st_errors = t.errors;
      })

(* ------------------------------------------------------------------ *)
(* Naming                                                             *)

(* The file name is the content address: an MD5 over the full prepare
   key, each component length-prefixed so distinct keys cannot collide
   by concatenation. *)
let entry_name ~digest ~mode_id ~style ~count_callees =
  let b = Buffer.create 64 in
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s)
    [
      digest;
      mode_id;
      Arde.Lower.style_name style;
      (if count_callees then "cc" else "");
    ];
  Digest.to_hex (Digest.string (Buffer.contents b)) ^ suffix

let entry_path t ~digest ~mode_id ~style ~count_callees =
  Filename.concat t.dir (entry_name ~digest ~mode_id ~style ~count_callees)

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)

let put_ids s (ids : int array) =
  Tc.put_varint s (Array.length ids);
  Array.iter (fun id -> Tc.put_varint s id) ids

let get_ids r what =
  let n = Tc.get_varint r what in
  if n < 0 || n > 0xFFFF then raise (Tc.Err (Tc.Corrupt { at = 0; what }));
  Array.init n (fun _ -> Tc.get_varint r what)

let encode_spin_cache s (sc : M.spin_cache) =
  let nf = Array.length sc.M.sc_header in
  Tc.put_varint s nf;
  for fid = 0 to nf - 1 do
    let nb = Array.length sc.M.sc_header.(fid) in
    Tc.put_varint s nb;
    for bi = 0 to nb - 1 do
      Tc.put_signed s sc.M.sc_header.(fid).(bi);
      put_ids s sc.M.sc_inloop.(fid).(bi);
      let tags = sc.M.sc_tags.(fid).(bi) in
      Tc.put_varint s (Array.length tags);
      Array.iter (fun ids -> put_ids s ids) tags
    done
  done

let decode_spin_cache r =
  let nf = Tc.get_varint r "spin cache nf" in
  if nf < 0 || nf > 0xFFFF then
    raise (Tc.Err (Tc.Corrupt { at = 0; what = "spin cache nf" }));
  let header = Array.make nf [||] in
  let inloop = Array.make nf [||] in
  let tags = Array.make nf [||] in
  for fid = 0 to nf - 1 do
    let nb = Tc.get_varint r "spin cache nb" in
    if nb < 0 || nb > 0xFFFFFF then
      raise (Tc.Err (Tc.Corrupt { at = 0; what = "spin cache nb" }));
    header.(fid) <- Array.make nb (-1);
    inloop.(fid) <- Array.make nb [||];
    tags.(fid) <- Array.make nb [||];
    for bi = 0 to nb - 1 do
      header.(fid).(bi) <- Tc.get_signed r "spin header";
      inloop.(fid).(bi) <- get_ids r "spin inloop";
      let npc = Tc.get_varint r "spin npc" in
      if npc < 0 || npc > 0xFFFFFF then
        raise (Tc.Err (Tc.Corrupt { at = 0; what = "spin npc" }));
      tags.(fid).(bi) <- Array.init npc (fun _ -> get_ids r "spin tags")
    done
  done;
  { M.sc_header = header; M.sc_inloop = inloop; M.sc_tags = tags }

let put_strings s l =
  Tc.put_varint s (List.length l);
  List.iter (fun x -> Tc.put_lpstr s x) l

let get_strings r what =
  let n = Tc.get_varint r what in
  if n < 0 || n > 0xFFFF then raise (Tc.Err (Tc.Corrupt { at = 0; what }));
  List.init n (fun _ -> Tc.get_lpstr r what)

(* An entry is [magic · u8 version · lpbytes body · varint fnv(body)].
   The body echoes the full key (so a name collision reads as corrupt,
   never as a wrong answer), then carries everything the load path
   cannot cheaply recompute: the processed program text and the spin
   cache.  Instrumentation, lock lists and the compiled form are
   re-derived or stored as strings — all of them milliseconds, against
   the hundreds the spin-cache build costs. *)
let encode ~digest ~mode_id ~style ~count_callees (p : AC.prepared) =
  let body = Tc.sink ~capacity:(1 lsl 16) () in
  Tc.put_lpstr body digest;
  Tc.put_lpstr body mode_id;
  Tc.put_lpstr body (Arde.Lower.style_name style);
  Tc.put_u8 body (if count_callees then 1 else 0);
  Tc.put_lpstr body (Arde.Pretty.program_to_string p.AC.p_program);
  put_strings body p.AC.p_cv_mutexes;
  put_strings body p.AC.p_inferred_locks;
  (match p.AC.p_instrument with
  | None -> Tc.put_u8 body 0
  | Some inst ->
      Tc.put_u8 body 1;
      encode_spin_cache body (M.export_spin_cache p.AC.p_compiled inst));
  let body = Tc.sink_contents body in
  let out = Tc.sink ~capacity:(String.length body + 32) () in
  String.iter (fun c -> Tc.put_u8 out (Char.code c)) magic;
  Tc.put_u8 out version;
  Tc.put_lpstr out body;
  Tc.put_varint out (Tc.hash_bytes body);
  Tc.sink_contents out

(* Decode and rebuild a [prepared] bundle.  Raises [Tc.Err] or [Failure]
   on anything structurally wrong; the caller maps every failure to
   fail-open recovery. *)
let decode ~digest ~mode ~style ~count_callees bytes =
  let mode_id = Arde.Config.mode_id mode in
  let r = Tc.reader bytes in
  let m = Bytes.create (String.length magic) in
  for i = 0 to String.length magic - 1 do
    Bytes.set m i (Char.chr (Tc.get_u8 r "magic"))
  done;
  if Bytes.to_string m <> magic then failwith "bad magic";
  let v = Tc.get_u8 r "version" in
  if v <> version then failwith (Printf.sprintf "version %d" v);
  let body = Tc.get_lpbytes r "body" in
  let sum = Tc.get_varint r "checksum" in
  if Tc.hash_bytes body <> sum then failwith "checksum mismatch";
  let r = Tc.reader body in
  let e_digest = Tc.get_lpstr r "digest" in
  let e_mode = Tc.get_lpstr r "mode" in
  let e_style = Tc.get_lpstr r "style" in
  let e_cc = Tc.get_u8 r "count_callees" = 1 in
  if
    e_digest <> digest || e_mode <> mode_id
    || e_style <> Arde.Lower.style_name style
    || e_cc <> count_callees
  then failwith "key mismatch";
  let text = Tc.get_lpstr r "program" in
  let cv_mutexes = get_strings r "cv_mutexes" in
  let inferred_locks = get_strings r "inferred_locks" in
  let spin =
    match Tc.get_u8 r "has spin cache" with
    | 0 -> None
    | 1 -> Some (decode_spin_cache r)
    | n -> failwith (Printf.sprintf "bad spin-cache flag %d" n)
  in
  let program =
    match Arde.Parse.program text with
    | Ok p -> p
    | Error e -> failwith ("program: " ^ Arde.Parse.error_to_string e)
  in
  let compiled = M.compile program in
  let instrument =
    match Arde.Config.spin_k mode with
    | None -> None
    | Some k -> Some (Arde.Instrument.analyze ~count_callees ~k program)
  in
  (match (instrument, spin) with
  | Some inst, Some sc -> (
      match M.import_spin_cache compiled inst sc with
      | Ok () -> ()
      | Error e -> failwith ("spin cache: " ^ e))
  | Some _, None | None, None -> ()
  | None, Some _ -> failwith "spin cache for uninstrumented mode");
  {
    AC.p_program = program;
    AC.p_instrument = instrument;
    AC.p_cv_mutexes = cv_mutexes;
    AC.p_inferred_locks = inferred_locks;
    AC.p_compiled = compiled;
  }

(* ------------------------------------------------------------------ *)
(* Entry I/O                                                          *)

(* Tmp names carry the pid: sibling workers writing the same key must
   not share a tmp file.  The renames then race benignly — entries are
   deterministic byte-for-byte, so last writer wins with identical
   content. *)
let write_atomic path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600
        tmp
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error e
  | exception Unix.Unix_error (err, fn, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))

let entry_files t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n suffix)
      |> List.filter_map (fun n ->
             let path = Filename.concat t.dir n in
             match Unix.stat path with
             | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                 Some (path, st_size, st_mtime)
             | _ -> None
             | exception Unix.Unix_error _ -> None)

let usage t =
  List.fold_left
    (fun (n, bytes) (_, size, _) -> (n + 1, bytes + size))
    (0, 0) (entry_files t)

let remove_entry path = try Sys.remove path with Sys_error _ -> ()

(* Oldest-mtime-first eviction down to [limit] bytes.  A disk hit
   freshens the entry's mtime, making this LRU rather than FIFO. *)
let sweep_to t limit =
  let files = entry_files t in
  let total = List.fold_left (fun a (_, size, _) -> a + size) 0 files in
  if total <= limit then 0
  else begin
    let by_age =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) files
    in
    let excess = ref (total - limit) in
    let evicted = ref 0 in
    List.iter
      (fun (path, size, _) ->
        if !excess > 0 then begin
          remove_entry path;
          excess := !excess - size;
          incr evicted
        end)
      by_age;
    !evicted
  end

let touch path =
  try Unix.utimes path 0.0 0.0 (* 0.0 0.0 = set both times to now *)
  with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* The Analysis_cache hook                                            *)

let load t (k : AC.store_key) =
  let mode_id = Arde.Config.mode_id k.AC.sk_mode in
  let path =
    entry_path t ~digest:k.AC.sk_digest ~mode_id ~style:k.AC.sk_style
      ~count_callees:k.AC.sk_count_callees
  in
  match Util.read_file path with
  | Error _ ->
      locked t (fun () -> t.misses <- t.misses + 1);
      None
  | Ok bytes -> (
      match
        decode ~digest:k.AC.sk_digest ~mode:k.AC.sk_mode ~style:k.AC.sk_style
          ~count_callees:k.AC.sk_count_callees bytes
      with
      | p ->
          locked t (fun () -> t.hits <- t.hits + 1);
          touch path;
          Some p
      | exception (Tc.Err _ | Failure _ | Invalid_argument _) ->
          (* Fail open: a corrupt, truncated, versioned-out or
             wrong-keyed entry is deleted and recomputed, never fatal. *)
          remove_entry path;
          locked t (fun () -> t.corrupt <- t.corrupt + 1);
          None)

let save t (k : AC.store_key) (p : AC.prepared) =
  let mode_id = Arde.Config.mode_id k.AC.sk_mode in
  let path =
    entry_path t ~digest:k.AC.sk_digest ~mode_id ~style:k.AC.sk_style
      ~count_callees:k.AC.sk_count_callees
  in
  match
    encode ~digest:k.AC.sk_digest ~mode_id ~style:k.AC.sk_style
      ~count_callees:k.AC.sk_count_callees p
  with
  | bytes -> (
      match write_atomic path bytes with
      | Ok () ->
          locked t (fun () ->
              t.saves <- t.saves + 1;
              let n = sweep_to t t.max_bytes in
              t.evictions <- t.evictions + n)
      | Error _ ->
          (* ENOSPC and friends: serving degrades to compute-only. *)
          locked t (fun () -> t.errors <- t.errors + 1))
  | exception _ -> locked t (fun () -> t.errors <- t.errors + 1)

let analysis_store t =
  { AC.store_load = load t; AC.store_save = save t }

(* ------------------------------------------------------------------ *)
(* Administration (the [arde cache] subcommand)                       *)

type entry_info = {
  e_path : string;
  e_digest_hex : string;
  e_mode : string;
  e_style : string;
  e_count_callees : bool;
  e_bytes : int;
  e_age_s : float;
}

(* Read just the key echo out of an entry header; None if unreadable. *)
let read_entry_key path =
  match Util.read_file path with
  | Error _ -> None
  | Ok bytes -> (
      match
        let r = Tc.reader bytes in
        for i = 0 to String.length magic - 1 do
          if Tc.get_u8 r "magic" <> Char.code magic.[i] then
            failwith "bad magic"
        done;
        let v = Tc.get_u8 r "version" in
        if v <> version then failwith "version";
        let body = Tc.get_lpbytes r "body" in
        let sum = Tc.get_varint r "checksum" in
        if Tc.hash_bytes body <> sum then failwith "checksum";
        let r = Tc.reader body in
        let digest = Tc.get_lpstr r "digest" in
        let mode_id = Tc.get_lpstr r "mode" in
        let style = Tc.get_lpstr r "style" in
        let cc = Tc.get_u8 r "count_callees" = 1 in
        (digest, mode_id, style, cc)
      with
      | key -> Some key
      | exception (Tc.Err _ | Failure _) -> None)

let entries t =
  let now = Unix.gettimeofday () in
  entry_files t
  |> List.filter_map (fun (path, size, mtime) ->
         match read_entry_key path with
         | None -> None
         | Some (digest, mode_id, style, cc) ->
             Some
               {
                 e_path = path;
                 e_digest_hex =
                   (* serve digests are raw MD5; show them hex *)
                   (if String.length digest = 16 then Digest.to_hex digest
                    else digest);
                 e_mode = mode_id;
                 e_style = style;
                 e_count_callees = cc;
                 e_bytes = size;
                 e_age_s = Float.max 0.0 (now -. mtime);
               })
  |> List.sort (fun a b -> compare a.e_age_s b.e_age_s)

let gc t ~max_bytes =
  locked t (fun () ->
      let n = sweep_to t max_bytes in
      t.evictions <- t.evictions + n;
      n)

let clear t =
  let files = entry_files t in
  List.iter (fun (path, _, _) -> remove_entry path) files;
  List.length files

(* Checksum walk: every entry is fully hash-checked (not decoded — the
   walk must not need the program parser to agree, only the bytes to be
   intact); corrupt ones are deleted. *)
let verify t =
  let kept = ref 0 and deleted = ref 0 in
  List.iter
    (fun (path, _, _) ->
      match read_entry_key path with
      | Some _ -> incr kept
      | None ->
          remove_entry path;
          incr deleted)
    (entry_files t);
  locked t (fun () -> t.corrupt <- t.corrupt + !deleted);
  (!kept, !deleted)
