(* Bounded request queue + drain state machine.  See scheduler.mli. *)

type 'job t = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : 'job Queue.t;
  max_pending : int;
  mutable inflight : int;
  mutable drain : bool;
}

let create ~max_pending =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    max_pending = max 1 max_pending;
    inflight = 0;
    drain = false;
  }

type admission = Accepted | Overloaded | Draining

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let submit t job =
  locked t (fun () ->
      if t.drain then Draining
      else if Queue.length t.q >= t.max_pending then Overloaded
      else begin
        Queue.add job t.q;
        Condition.signal t.nonempty;
        Accepted
      end)

let next t =
  locked t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then begin
          t.inflight <- t.inflight + 1;
          Some (Queue.pop t.q)
        end
        else if t.drain then None
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
      in
      wait ())

let job_done t =
  locked t (fun () -> t.inflight <- max 0 (t.inflight - 1))

let begin_drain t =
  locked t (fun () ->
      t.drain <- true;
      Condition.broadcast t.nonempty)

let draining t = locked t (fun () -> t.drain)
let depth t = locked t (fun () -> Queue.length t.q)
let in_flight t = locked t (fun () -> t.inflight)
let idle t = locked t (fun () -> Queue.is_empty t.q && t.inflight = 0)
