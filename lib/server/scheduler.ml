(* Per-worker affinity queues with global admission control.
   See scheduler.mli. *)

type 'job t = {
  queues : 'job Queue.t array;
  busy : bool array;
  max_pending : int;
  mutable queued : int;
  mutable drain : bool;
  mutable refused : int;
  mutable cancelled : int;
}

let create ~workers ~max_pending =
  let workers = max 1 workers in
  {
    queues = Array.init workers (fun _ -> Queue.create ());
    busy = Array.make workers false;
    max_pending = max 1 max_pending;
    queued = 0;
    drain = false;
    refused = 0;
    cancelled = 0;
  }

let workers t = Array.length t.queues

type admission = Accepted | Overloaded | Draining

let submit t ~slot job =
  if t.drain then Draining
  else if t.queued >= t.max_pending then begin
    (* The refused job never held a slot; count it and leave capacity
       untouched so the very next submission can be admitted. *)
    t.refused <- t.refused + 1;
    Overloaded
  end
  else begin
    Queue.add job t.queues.(slot);
    t.queued <- t.queued + 1;
    Accepted
  end

let enqueue t ~slot job =
  (* Re-routing path: the job already passed admission (it held a queue
     slot on a worker that died), so no admission check and no bound —
     capacity was reserved when it was first accepted. *)
  Queue.add job t.queues.(slot);
  t.queued <- t.queued + 1

let take t ~slot =
  if t.busy.(slot) || Queue.is_empty t.queues.(slot) then None
  else begin
    let job = Queue.pop t.queues.(slot) in
    t.queued <- t.queued - 1;
    t.busy.(slot) <- true;
    Some job
  end

let finish t ~slot = t.busy.(slot) <- false
let busy t ~slot = t.busy.(slot)
let slot_depth t ~slot = Queue.length t.queues.(slot)

let drain_slot t ~slot =
  let q = t.queues.(slot) in
  let jobs = List.of_seq (Queue.to_seq q) in
  t.queued <- t.queued - Queue.length q;
  Queue.clear q;
  jobs

let remove t ~pred =
  let removed = ref [] in
  Array.iter
    (fun q ->
      let keep = Queue.create () in
      Queue.iter
        (fun job -> if pred job then removed := job :: !removed else Queue.add job keep)
        q;
      Queue.clear q;
      Queue.transfer keep q)
    t.queues;
  let removed = List.rev !removed in
  let n = List.length removed in
  t.queued <- t.queued - n;
  t.cancelled <- t.cancelled + n;
  removed

let begin_drain t = t.drain <- true
let draining t = t.drain
let depth t = t.queued
let in_flight t = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.busy
let idle t = t.queued = 0 && in_flight t = 0
let refused t = t.refused
let cancelled t = t.cancelled
