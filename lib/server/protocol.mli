(** The serve wire protocol: framing, request/response schemas, and the
    shared one-shot output shape.

    Every message on the socket — in either direction — is one {e frame}:
    a 4-byte big-endian payload length followed by that many bytes of
    minified UTF-8 JSON.  Frames never interleave (each side serializes
    writes per connection), so a reader only needs this module's
    incremental {!decoder} to recover message boundaries from arbitrary
    read chunks.

    The JSON schemas are documented in DESIGN.md §6; this interface is
    the single source of truth for building and parsing them, used by
    the server, the client library, the CLI and the load benchmark —
    byte-identical output between [arde run] and [arde submit] falls out
    of both paths calling {!run_output}. *)

(** {1 Framing} *)

val default_max_frame : int
(** 8 MiB — far above any response the repository's workloads produce. *)

val frame : string -> string
(** [frame payload] is the length header followed by [payload]. *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame and write a payload, looping over short writes.
    @raise Unix.Unix_error as [Unix.write] does (e.g. [EPIPE]). *)

type decoder
(** Incremental frame reassembly over a byte stream. *)

val decoder : ?max_frame:int -> unit -> decoder

type frame_result =
  | Frame of string  (** one complete payload, removed from the buffer *)
  | Await  (** need more bytes *)
  | Too_large of int
      (** the header announced this many bytes, beyond [max_frame] — the
          stream is poisoned and the connection should be dropped *)

val feed : decoder -> Bytes.t -> int -> int -> unit
(** [feed d buf off len] appends a read chunk. *)

val next_frame : decoder -> frame_result
(** Call repeatedly after {!feed} until it returns [Await]. *)

val decoder_pending : decoder -> int
(** Bytes buffered but not yet returned as a frame — nonzero at stream
    EOF means the peer died mid-frame (a torn reply). *)

(** {1 Error codes}

    Structured failure vocabulary carried in error responses. *)

type error_code =
  | Bad_frame  (** payload is not valid JSON (or violates parser limits) *)
  | Bad_request
      (** valid JSON, unusable content: unknown type, missing or
          ill-typed field, unparsable mode/options/program *)
  | Overloaded  (** admission control: the pending queue is full *)
  | Draining  (** the server is shutting down and refuses new work *)
  | Internal  (** unexpected server-side exception *)
  | Worker_crashed
      (** the worker process executing (or destined to execute) this
          request died — crash, watchdog kill, or torn reply; the
          request itself may be fine and is safe to retry *)
  | Deadline_expired
      (** the request's deadline elapsed while it was still queued, so
          no detection work was started *)

val code_name : error_code -> string
(** ["bad_frame"], ["bad_request"], ["overloaded"], ["draining"],
    ["internal"], ["worker_crashed"], ["deadline_expired"]. *)

val retryable_code : string -> bool
(** The client retry policy's allow-list: [true] only for
    ["worker_crashed"] and ["draining"] (connection-refused transport
    errors are classified by the client itself). *)

(** {1 Requests} *)

(** What a run request asks a worker to do.  [Rq_program] is the live
    path: canonical TIR text ([Pretty.program_to_string]) plus mode and
    knobs, with [rp_record] asking the worker to record the event stream
    and return the binary trace alongside the result.  [Rq_trace] is the
    replay-farm path: a complete {!Arde.Trace_codec} trace (raw bytes
    here; base64 on the wire), replayed through a fresh engine without
    re-executing the machine — mode and options come from the trace
    header. *)
type program_request = {
  rp_program : string;
  rp_mode : Arde.Config.mode;
  rp_options : Arde.Options.t;
  rp_record : bool;
}

type run_payload = Rq_program of program_request | Rq_trace of string

type run_request = {
  rq_id : Arde.Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  rq_payload : run_payload;
  rq_deadline_ms : int option;
      (** wall-clock budget for the detection run; on expiry remaining
          seeds are cancelled cooperatively (the response still carries
          every completed seed's findings) *)
  rq_retry : int;
      (** which resend of an earlier attempt this is; [0] on the first
          send — feeds the server's [retries] counter *)
}

type request =
  | Run of run_request
  | Stats of Arde.Json.t  (** id *)
  | Ping of Arde.Json.t  (** id *)
  | Hello
      (** a binary client announcing itself; the server answers with a
          hello-ack carrying its frame cap and speaks binary to this
          connection's unframeable errors from then on *)

(** {1 Wires}

    Two payload encodings share the framing layer: minified JSON (the
    original wire, always accepted) and a length-prefixed binary form
    built on {!Arde.Trace_codec}'s varint primitives (DESIGN.md §6).
    Every payload is self-describing — binary messages open with the
    [0xB7] magic byte, which no JSON document can start with — so the
    server answers each request on the wire it arrived on, and JSON
    clients never see a negotiation step.  Detection results stay JSON
    inside the binary envelope (the cross-wire identity anchor); what
    binary buys is programs and traces riding as raw bytes instead of
    JSON-escaped or base64 text. *)

type wire = Json | Binary

val payload_wire : string -> wire
(** Classify a frame payload by its first byte. *)

val wire_name : wire -> string
val parse_wire : string -> (wire, string) result
(** ["json"] / ["binary"], the CLI flag vocabulary. *)

val run_request_json :
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  ?retry:int ->
  ?record:bool ->
  program:string ->
  mode:Arde.Config.mode ->
  options:Arde.Options.t ->
  unit ->
  Arde.Json.t
(** [retry] (when [> 0]) marks the request as the [n]-th resend of an
    earlier attempt, feeding the server's [retries] counter.  [record]
    (default [false]) asks the worker to also record the run: the
    response then carries a base64 ["trace"] field holding the binary
    trace that reproduces the result. *)

val replay_request_json :
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  ?retry:int ->
  trace:string ->
  unit ->
  Arde.Json.t
(** A run request carrying a recorded binary trace ([trace] is the raw
    bytes; this function base64-encodes them).  The server routes it by
    the program digest in the trace header and the worker replays
    detection without executing the machine. *)

val stats_request : ?id:Arde.Json.t -> unit -> Arde.Json.t
val ping_request : ?id:Arde.Json.t -> unit -> Arde.Json.t

(** {2 Binary requests}

    The binary counterparts of the builders above; each returns the
    complete frame payload (magic, version, kind, body) as bytes. *)

val binary_run_request :
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  ?retry:int ->
  ?record:bool ->
  program:string ->
  mode:Arde.Config.mode ->
  options:Arde.Options.t ->
  unit ->
  string

val binary_replay_request :
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  ?retry:int ->
  trace:string ->
  unit ->
  string
(** [trace] is the raw recorded bytes — they travel verbatim, the
    binary wire's whole point. *)

val binary_stats_request : ?id:Arde.Json.t -> unit -> string
val binary_ping_request : ?id:Arde.Json.t -> unit -> string

val binary_hello : unit -> string
(** The client's first frame on a binary connection. *)

val binary_hello_ack : max_frame:int -> string
(** The server's reply, mirroring its frame cap so the client can size
    its own decoder to match. *)

val parse_hello_ack : string -> (int, string) result
(** The negotiated frame cap out of a hello-ack payload. *)

val parse_request :
  string -> (request, Arde.Json.t * error_code * string) result
(** Parse one frame payload on either wire (dispatched by
    {!payload_wire}).  The error carries the request id when one could
    be recovered ([Null] otherwise), so the server can still correlate
    the error response.  Structurally unparsable payloads — invalid
    JSON, or truncated/corrupt/trailing binary bytes — are [Bad_frame];
    everything else wrong is [Bad_request]. *)

(** {1 Responses} *)

val ok_response : id:Arde.Json.t -> (string * Arde.Json.t) list -> Arde.Json.t
(** [{"type":"response","id":id,"ok":true, ...fields}]. *)

val error_response : id:Arde.Json.t -> error_code -> string -> Arde.Json.t
(** [{"type":"response","id":id,"ok":false,
      "error":{"code":code,"message":msg}}]. *)

val response_ok : Arde.Json.t -> bool

val response_error : Arde.Json.t -> (string * string) option
(** [(code, message)] when the response is an error. *)

val binary_response : ?raw_trace:string -> Arde.Json.t -> string
(** Re-package a canonical JSON response object as a binary payload.
    The encoders take the JSON object — every producer already builds
    one — so the two wires cannot drift.  [raw_trace] short-circuits
    the base64 decode of a ["trace"] field when the producer still
    holds the raw bytes (the record-mode worker). *)

val encode_response : ?raw_trace:string -> wire:wire -> Arde.Json.t -> string
(** The frame payload for a response on the given wire:
    [Arde.Json.to_string] or {!binary_response}. *)

val response_of_binary : string -> (Arde.Json.t, string) result
(** The client-side inverse of {!binary_response}: rebuild the canonical
    JSON response object (a recovered trace is re-encoded base64), so
    everything downstream of the client's receive path is wire-blind. *)

(** {1 The supervisor <-> worker wire}

    Worker processes speak the same frame codec over a socketpair held
    by the supervisor.  Request and response bodies cross this hop as
    {e raw bytes}: a [job] header frame is followed by one frame holding
    the client's request verbatim (the worker journals exactly those
    bytes to the spool, which is what makes crash bundles replayable
    with the production request parser), and a [done] header frame is
    followed by one frame of response bytes the supervisor forwards
    untouched.  Run requests are hundreds of kilobytes of program text;
    each parse or serialize pass over them costs milliseconds, so the
    hop adds none of its own. *)

val hello_frame : worker:int -> pid:int -> Arde.Json.t
(** Sent once by a worker when it is ready to execute (domain pool
    built, spool reachable). *)

val job_frame : job:int -> digest:string -> Arde.Json.t
(** The header announcing job [job]; the supervisor sends the raw
    request bytes in the very next frame.  [digest] is the hex digest of
    the request's program text — the supervisor already computed it for
    affinity routing, so the worker need not digest the program again. *)

val done_frame :
  ?store:Arde.Json.t ->
  job:int ->
  spool_error:bool ->
  code:string ->
  unit ->
  Arde.Json.t
(** The header completing job [job], carrying the response's outcome
    [code] (["ok"] or an error code) for the supervisor's counters, and
    optionally [store] — the bundle-store counter movement this request
    caused, which the supervisor folds into daemon-wide totals; the
    worker sends the raw response bytes in the very next frame. *)

type worker_msg =
  | W_hello of int  (** the worker's pid *)
  | W_done of {
      wd_job : int;
      wd_spool_error : bool;
      wd_code : string;
      wd_store : Arde.Json.t option;
    }
      (** the response bytes follow in the next frame, verbatim *)

val parse_worker_msg : string -> (worker_msg, string) result

val parse_job : string -> (int * string, string) result
(** The job id and program digest of a [job] header frame; the request
    bytes follow in the next frame. *)

(** {1 The shared one-shot output shape}

    [arde run --format json] and [arde submit] both emit this object;
    building it from the {e serialized} result (rather than the in-memory
    record) is what makes the two paths byte-identical by construction.

    Fields, in order: ["workload"], ["result"], ["verdict"] (labelled
    cases only), ["analysis_cache"] (when given), ["exit_code"]. *)

val run_output :
  workload:string ->
  ?expectation:Arde.Classify.expectation ->
  ?analysis_cache:Arde.Json.t ->
  Arde.Json.t ->
  (Arde.Json.t * int, string) result
(** [run_output ~workload result_json] recomputes the verdict and exit
    code (0 clean, 1 races, 2 degraded, 3 failed) from the result's own
    serialized report and health, and returns the printable object
    together with the exit code.  Errors only on a result that does not
    follow [Driver.result_to_json]'s schema. *)
