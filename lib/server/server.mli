(** The crash-only detection daemon behind [arde serve].

    The process that binds the socket is a {e supervisor}: it owns no
    domain pool and runs no detection.  It forks out (via re-exec — see
    {!Worker}) [workers] worker processes, each with its own resident
    {!Arde.Domain_pool.pool}, program cache and analysis cache, bridged
    over a socketpair.  Run requests are routed by program-digest
    affinity so repeat submissions keep hitting the worker whose caches
    are already warm; each worker executes one request at a time.

    Crash-only means worker death is a handled input, not a failure
    mode: the request a dead worker was executing is answered with a
    structured [worker_crashed] error (never a dropped connection), its
    journaled request is sealed into a durable, replayable crash bundle
    (see {!Spool} and [arde postmortem]), its queued work is re-routed,
    and the slot restarts under exponential backoff with a restart-storm
    circuit breaker.  A watchdog SIGKILLs workers that overrun their
    request deadline (plus grace) or the idle watchdog bound.

    Threading: the supervisor is one domain-free thread around
    [Unix.select] — it must stay domain-free because OCaml 5 processes
    that created domains cannot spawn children cheaply, and because a
    single-owner loop needs no locks.  All writes go through
    non-blocking {!Util.outbuf}s so a slow client or wedged worker can
    never stall the loop.

    Shutdown: {!initiate_drain} (async-signal-safe; {!handle_signals}
    wires it to SIGTERM and SIGINT) refuses new work with structured
    [draining] errors, lets queued and in-flight requests finish,
    flushes responses, then closes every worker's pipe (their drain
    signal) and reaps them, SIGKILLing stragglers after a grace
    period. *)

type config = {
  socket_path : string;
  tcp : (string * int) option;
      (** also listen on this TCP endpoint, sharing the frame and wire
          code with the Unix socket; port [0] binds an ephemeral port
          (see {!tcp_endpoint}) *)
  workers : int;  (** worker processes; [<= 0] means 2 *)
  max_pending : int;  (** global admission bound on queued requests *)
  max_frame : int;  (** per-connection inbound frame size limit *)
  jobs : int;  (** per-worker pool width; [<= 0] means host core count *)
  default_deadline_ms : int option;
      (** applied to requests that carry no [deadline_ms] of their own *)
  watchdog_ms : int;
      (** kill bound for requests with no effective deadline *)
  watchdog_grace_ms : int;
      (** slack past a request's deadline before the SIGKILL — covers
          the worker's own cooperative-cancellation latency *)
  restart_backoff_ms : int;  (** first respawn delay; doubles per crash *)
  restart_backoff_max_ms : int;
  breaker_threshold : int;
      (** crashes within the window that open a slot's circuit *)
  breaker_window_s : float;  (** storm window, and the cooldown *)
  spool_dir : string option;  (** default: [socket_path ^ ".spool"] *)
  store_dir : string option;
      (** on-disk bundle store shared by all workers (and by successive
          daemons on the same path); [None] disables persistence *)
  store_max_mb : int;  (** store size bound for the LRU sweep *)
  chaos_plan : string;
      (** fault plan forwarded to workers (see {!Arde.Chaos.Serve});
          [""] means none *)
  worker_exec : string option;
      (** binary to re-exec as workers; default [Sys.executable_name] *)
  log : string -> unit;  (** server-side event log (pass [ignore] to mute) *)
}

val config :
  ?tcp:string * int ->
  ?workers:int ->
  ?max_pending:int ->
  ?max_frame:int ->
  ?jobs:int ->
  ?default_deadline_ms:int ->
  ?watchdog_ms:int ->
  ?watchdog_grace_ms:int ->
  ?restart_backoff_ms:int ->
  ?restart_backoff_max_ms:int ->
  ?breaker_threshold:int ->
  ?breaker_window_s:float ->
  ?spool_dir:string ->
  ?store_dir:string ->
  ?store_max_mb:int ->
  ?chaos_plan:string ->
  ?worker_exec:string ->
  ?log:(string -> unit) ->
  socket_path:string ->
  unit ->
  config
(** Defaults: no TCP listener, [workers = 2], [max_pending = 64],
    [max_frame = Protocol.default_max_frame], [jobs = 0], no default
    deadline, [watchdog_ms = 120_000], [watchdog_grace_ms = 2_000],
    [restart_backoff_ms = 100], [restart_backoff_max_ms = 5_000],
    [breaker_threshold = 5], [breaker_window_s = 10.], no bundle store,
    [store_max_mb = Store.default_max_mb], mute log. *)

type t

val create : config -> (t, string) result
(** Bind the socket (replacing a stale one left by a dead server),
    create the spool directories, validate the chaos plan, and spawn the
    worker processes.  [Error] if the path is in use by a live server,
    cannot be bound, the spool is unwritable, or the plan is
    malformed. *)

val tcp_endpoint : t -> (string * int) option
(** The TCP address actually bound, once {!create} succeeds — useful
    when the config asked for port [0] (ephemeral).  [None] when no TCP
    listener was configured. *)

val run : t -> unit
(** The supervisor loop.  Blocks until a drain completes, then flushes
    pending responses, closes every connection, shuts the workers down
    and unlinks the socket. *)

val initiate_drain : t -> unit
(** Request a graceful drain.  Async-signal-safe and idempotent: sets a
    flag and pokes the loop's wake-up pipe; the loop does the rest. *)

val handle_signals : t -> unit
(** Route SIGTERM and SIGINT to {!initiate_drain} and ignore SIGPIPE
    (disconnecting clients must not kill the server). *)

val stats_json : t -> Arde.Json.t
(** The same object a [stats] request returns: uptime, monotonic request
    counters (including [worker_crashed], [deadline_expired], [retries]
    and [spool_errors]), queue state, the supervision block (crashes,
    restarts, watchdog kills, sealed bundles, per-worker health) and the
    spool location. *)
