(** The resident detection daemon behind [arde serve].

    One process owns one long-lived {!Arde.Domain_pool.pool} and the
    process-wide {!Arde.Analysis_cache}; requests arrive as frames
    (see {!Protocol}) over a Unix domain socket, pass the
    {!Scheduler}'s admission control, and execute one at a time on a
    dedicated worker domain — the per-seed fan-out inside each request
    is where the parallelism lives, so detection results stay
    byte-identical to one-shot [arde run].

    Threading: the calling domain runs the [select]-based connection
    loop (accept, read, frame reassembly, immediate replies: ping,
    stats, admission errors); the worker domain executes run requests
    and writes their responses.  A per-connection write lock keeps
    frames from interleaving.

    Shutdown: {!initiate_drain} (async-signal-safe; {!handle_signals}
    wires it to SIGTERM and SIGINT) flips the scheduler into draining —
    queued and in-flight requests complete and their responses are
    delivered, new connections and new requests get a structured
    [draining] error — then {!run} tears everything down and returns,
    so the CLI can exit 0. *)

type config = {
  socket_path : string;
  max_pending : int;  (** admission-control bound on queued requests *)
  max_frame : int;  (** per-connection inbound frame size limit *)
  jobs : int;  (** resident pool width; [<= 0] means host core count *)
  default_deadline_ms : int option;
      (** applied to requests that carry no [deadline_ms] of their own *)
  log : string -> unit;  (** server-side event log (pass [ignore] to mute) *)
}

val config :
  ?max_pending:int ->
  ?max_frame:int ->
  ?jobs:int ->
  ?default_deadline_ms:int ->
  ?log:(string -> unit) ->
  socket_path:string ->
  unit ->
  config
(** Defaults: [max_pending = 64], [max_frame = Protocol.default_max_frame],
    [jobs = 0], no default deadline, mute log. *)

type t

val create : config -> (t, string) result
(** Bind the socket (replacing a stale one left by a dead server),
    spawn the worker domain and the resident pool.  [Error] if the path
    is in use by a live server or cannot be bound. *)

val run : t -> unit
(** The connection loop.  Blocks until a drain completes, then closes
    every connection, joins the worker, shuts the pool down and unlinks
    the socket. *)

val initiate_drain : t -> unit
(** Request a graceful drain.  Async-signal-safe and idempotent: sets a
    flag and pokes the loop's wake-up pipe; the loop does the rest. *)

val handle_signals : t -> unit
(** Route SIGTERM and SIGINT to {!initiate_drain} and ignore SIGPIPE
    (disconnecting clients must not kill the server). *)

val stats_json : t -> Arde.Json.t
(** The same object a [stats] request returns: uptime, request counts
    by outcome, queue state, program/analysis cache counters, pool
    width. *)
