(* Framing and schemas for the serve socket.  See protocol.mli. *)

module J = Arde.Json

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)

let default_max_frame = 8 * 1024 * 1024

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write_frame fd payload =
  let s = frame payload in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

type decoder = { mutable dbuf : Bytes.t; mutable dlen : int; dmax : int }

let decoder ?(max_frame = default_max_frame) () =
  { dbuf = Bytes.create 4096; dlen = 0; dmax = max_frame }

type frame_result = Frame of string | Await | Too_large of int

let decoder_pending d = d.dlen

let feed d src off len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Protocol.feed";
  let need = d.dlen + len in
  if need > Bytes.length d.dbuf then begin
    let cap = ref (Bytes.length d.dbuf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit d.dbuf 0 nb 0 d.dlen;
    d.dbuf <- nb
  end;
  Bytes.blit src off d.dbuf d.dlen len;
  d.dlen <- d.dlen + len

let next_frame d =
  if d.dlen < 4 then Await
  else
    let n = Int32.to_int (Bytes.get_int32_be d.dbuf 0) in
    if n < 0 || n > d.dmax then Too_large (n land 0xFFFFFFFF)
    else if d.dlen < 4 + n then Await
    else begin
      let payload = Bytes.sub_string d.dbuf 4 n in
      let rest = d.dlen - 4 - n in
      Bytes.blit d.dbuf (4 + n) d.dbuf 0 rest;
      d.dlen <- rest;
      Frame payload
    end

(* ------------------------------------------------------------------ *)
(* Error codes                                                        *)

type error_code =
  | Bad_frame
  | Bad_request
  | Overloaded
  | Draining
  | Internal
  | Worker_crashed
  | Deadline_expired

let code_name = function
  | Bad_frame -> "bad_frame"
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Internal -> "internal"
  | Worker_crashed -> "worker_crashed"
  | Deadline_expired -> "deadline_expired"

(* Idempotent-safe to retry: the request provably did not complete a
   detection run whose answer the client then threw away — the daemon
   was not reachable, refused before execution, or the executing worker
   died.  (Detection is pure, so even a lost completed run would be safe
   to re-run; but [overloaded] is the server asking for {e less}
   traffic, so the client-side policy deliberately excludes it.) *)
let retryable_code = function
  | "worker_crashed" | "draining" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)

(* What a run request asks the worker to do: execute a program (and
   possibly record it), or replay a recorded trace.  The trace travels
   base64-inside-JSON on the wire but is raw binary here — protocol
   parsing is the only place that knows about the encoding. *)
type program_request = {
  rp_program : string;
  rp_mode : Arde.Config.mode;
  rp_options : Arde.Options.t;
  rp_record : bool;
}

type run_payload = Rq_program of program_request | Rq_trace of string

type run_request = {
  rq_id : J.t;
  rq_payload : run_payload;
  rq_deadline_ms : int option;
  rq_retry : int; (* which retry attempt this is; 0 = first send *)
}

type request = Run of run_request | Stats of J.t | Ping of J.t | Hello

(* ------------------------------------------------------------------ *)
(* Wire selection                                                     *)

(* Every frame payload is self-describing: JSON documents open with
   whitespace or a structural character, never 0xB7, so one byte picks
   the codec and JSON-only clients never see a negotiation step. *)

type wire = Json | Binary

let binary_magic = 0xB7
let binary_version = 1

let payload_wire payload =
  if String.length payload > 0 && Char.code payload.[0] = binary_magic then
    Binary
  else Json

let wire_name = function Json -> "json" | Binary -> "binary"

let parse_wire = function
  | "json" -> Ok Json
  | "binary" -> Ok Binary
  | s -> Error (Printf.sprintf "unknown wire %S (expected json or binary)" s)

let run_json ?(id = J.Null) ?deadline_ms ?retry payload_fields =
  J.Obj
    ([ ("type", J.String "run"); ("id", id) ]
    @ payload_fields
    @ (match deadline_ms with
      | None -> []
      | Some d -> [ ("deadline_ms", J.Int d) ])
    @
    match retry with
    | None | Some 0 -> []
    | Some n -> [ ("retry", J.Int n) ])

let run_request_json ?id ?deadline_ms ?retry ?(record = false) ~program
    ~mode ~options () =
  run_json ?id ?deadline_ms ?retry
    ([
       ("program", J.String program);
       ("mode", J.String (Arde.Config.mode_id mode));
       ("options", Arde.Options.to_json options);
     ]
    @ if record then [ ("record", J.Bool true) ] else [])

let replay_request_json ?id ?deadline_ms ?retry ~trace () =
  run_json ?id ?deadline_ms ?retry
    [ ("trace", J.String (Arde.Base64.encode trace)) ]

let stats_request ?(id = J.Null) () =
  J.Obj [ ("type", J.String "stats"); ("id", id) ]

let ping_request ?(id = J.Null) () =
  J.Obj [ ("type", J.String "ping"); ("id", id) ]

(* Requests are shallow (the program travels as a string), so a tight
   depth limit guards the socket against nesting bombs long before the
   parser's own default would. *)
let request_max_depth = 64

let parse_json_request payload =
  match J.parse_checked ~max_depth:request_max_depth payload with
  | Error e -> Error (J.Null, Bad_frame, J.error_to_string e)
  | Ok j -> (
      let id = Option.value (J.member "id" j) ~default:J.Null in
      let str_field name =
        match Option.bind (J.member name j) J.to_str with
        | Some s -> Ok s
        | None ->
            Error (id, Bad_request,
                   Printf.sprintf "missing or ill-typed field %S" name)
      in
      match Option.bind (J.member "type" j) J.to_str with
      | Some "ping" -> Ok (Ping id)
      | Some "stats" -> Ok (Stats id)
      | Some "run" ->
          let ( let* ) = Result.bind in
          let* rq_payload =
            match (J.member "trace" j, J.member "program" j) with
            | Some _, Some _ ->
                Error
                  (id, Bad_request,
                   "request carries both \"program\" and \"trace\"")
            | Some t, None -> (
                match J.to_str t with
                | None ->
                    Error
                      (id, Bad_request, "missing or ill-typed field \"trace\"")
                | Some b64 -> (
                    match Arde.Base64.decode b64 with
                    | Ok trace -> Ok (Rq_trace trace)
                    | Error e -> Error (id, Bad_request, "trace: " ^ e)))
            | None, _ ->
                let* rp_program = str_field "program" in
                let* mode_s = str_field "mode" in
                let* rp_mode =
                  Result.map_error
                    (fun e -> (id, Bad_request, e))
                    (Arde.Config.parse_mode mode_s)
                in
                let* rp_options =
                  match J.member "options" j with
                  | None -> Ok (Arde.Options.make ())
                  | Some o ->
                      Result.map_error
                        (fun e -> (id, Bad_request, "options: " ^ e))
                        (Arde.Options.of_json o)
                in
                let rp_record =
                  Option.value ~default:false
                    (Option.bind (J.member "record" j) J.to_bool)
                in
                Ok (Rq_program { rp_program; rp_mode; rp_options; rp_record })
          in
          let* rq_deadline_ms =
            match J.member "deadline_ms" j with
            | None | Some J.Null -> Ok None
            | Some d -> (
                match J.to_int d with
                | Some ms when ms > 0 -> Ok (Some ms)
                | _ ->
                    Error (id, Bad_request,
                           "deadline_ms must be a positive integer"))
          in
          let rq_retry =
            match Option.bind (J.member "retry" j) J.to_int with
            | Some n when n > 0 -> n
            | _ -> 0
          in
          Ok (Run { rq_id = id; rq_payload; rq_deadline_ms; rq_retry })
      | Some other ->
          Error (id, Bad_request,
                 Printf.sprintf "unknown request type %S" other)
      | None -> Error (id, Bad_request, "missing field \"type\""))

(* ------------------------------------------------------------------ *)
(* The binary wire                                                    *)

(* Length-prefixed binary bodies sharing the trace codec's varint /
   zigzag / lpstr primitives.  The layout (see DESIGN.md §6):

     payload  := 0xB7 · u8 version · u8 kind · body
     kind 1   hello       (client→server; empty body)
     kind 2   hello-ack   (server→client; varint max_frame)
     kind 3   run-program id · u8 flags · [varint deadline_ms]
                          · varint retry · lpstr mode_id
                          · lpstr options_json · lpstr program
     kind 4   run-trace   id · u8 flags · [varint deadline_ms]
                          · varint retry · lpbytes trace
     kind 5   stats       id
     kind 6   ping        id
     kind 7   ok          id · u8 body_kind
                          body 0: pong (empty)
                          body 1: lpstr result_json · u8 has_cache
                                  · [lpstr cache_json] · u8 has_trace
                                  · [lpbytes trace]
                          body 2: lpstr stats_json
     kind 8   error       id · lpstr code · lpstr message

   flags: bit 0 = record, bit 1 = deadline_ms follows.  Request ids are
   arbitrary JSON values in the JSON wire, so they travel as their JSON
   text ("" encodes null).  Detection results stay JSON {e inside} the
   binary envelope: the result document is the cross-wire identity
   anchor ([arde run --format json] must agree byte-for-byte), and what
   the binary wire actually buys is raw traces and programs — the bulk
   payloads — riding without base64 or JSON-string escaping. *)

module Tc = Arde.Trace_codec

let bsink kind =
  let s = Tc.sink ~capacity:256 () in
  Tc.put_u8 s binary_magic;
  Tc.put_u8 s binary_version;
  Tc.put_u8 s kind;
  s

let put_id s (id : J.t) =
  Tc.put_lpstr s (match id with J.Null -> "" | j -> J.to_string j)

let get_id r =
  match Tc.get_lpstr r "request id" with
  | "" -> J.Null
  | txt -> (
      match J.parse txt with
      | Ok j -> j
      | Error _ ->
          raise
            (Tc.Err
               (Tc.Corrupt
                  { at = Tc.reader_pos r; what = "id is not a JSON value" })))

let put_run_common s ~id ~deadline_ms ~retry ~record =
  put_id s id;
  let flags =
    (if record then 1 else 0)
    lor match deadline_ms with Some _ -> 2 | None -> 0
  in
  Tc.put_u8 s flags;
  (match deadline_ms with Some d -> Tc.put_varint s d | None -> ());
  Tc.put_varint s (match retry with Some n when n > 0 -> n | _ -> 0)

let binary_run_request ?(id = J.Null) ?deadline_ms ?retry ?(record = false)
    ~program ~mode ~options () =
  let s = bsink 3 in
  put_run_common s ~id ~deadline_ms ~retry ~record;
  Tc.put_lpstr s (Arde.Config.mode_id mode);
  Tc.put_lpstr s (J.to_string (Arde.Options.to_json options));
  Tc.put_lpstr s program;
  Tc.sink_contents s

let binary_replay_request ?(id = J.Null) ?deadline_ms ?retry ~trace () =
  let s = bsink 4 in
  put_run_common s ~id ~deadline_ms ~retry ~record:false;
  Tc.put_lpstr s trace;
  Tc.sink_contents s

let binary_stats_request ?(id = J.Null) () =
  let s = bsink 5 in
  put_id s id;
  Tc.sink_contents s

let binary_ping_request ?(id = J.Null) () =
  let s = bsink 6 in
  put_id s id;
  Tc.sink_contents s

let binary_hello () = Tc.sink_contents (bsink 1)

let binary_hello_ack ~max_frame =
  let s = bsink 2 in
  Tc.put_varint s max_frame;
  Tc.sink_contents s

(* Decoding.  A reader positioned after the magic byte; every structural
   failure is a [Bad_frame] naming the offending piece, mirroring the
   JSON parser's error triple so callers need not care which wire the
   garbage arrived on. *)

let binary_envelope payload =
  let r = Tc.reader ~off:1 payload in
  let v = Tc.get_u8 r "wire version" in
  if v <> binary_version then
    raise
      (Tc.Err
         (Tc.Corrupt
            {
              at = 1;
              what = Printf.sprintf "unsupported binary wire version %d" v;
            }));
  (r, Tc.get_u8 r "message kind")

let reject_trailing r =
  if Tc.reader_left r <> 0 then
    raise
      (Tc.Err
         (Tc.Corrupt
            { at = Tc.reader_pos r; what = "trailing bytes after message" }))

let get_run_common r =
  let id = get_id r in
  let flags = Tc.get_u8 r "run flags" in
  let deadline_ms =
    if flags land 2 <> 0 then Some (Tc.get_varint r "deadline_ms") else None
  in
  let retry = Tc.get_varint r "retry" in
  (id, flags, deadline_ms, retry)

let parse_binary_request payload =
  match
    let r, kind = binary_envelope payload in
    match kind with
    | 1 ->
        reject_trailing r;
        Ok Hello
    | 5 ->
        let id = get_id r in
        reject_trailing r;
        Ok (Stats id)
    | 6 ->
        let id = get_id r in
        reject_trailing r;
        Ok (Ping id)
    | 3 ->
        let id, flags, rq_deadline_ms, rq_retry = get_run_common r in
        let mode_s = Tc.get_lpstr r "mode" in
        let options_s = Tc.get_lpstr r "options" in
        let rp_program = Tc.get_lpbytes r "program" in
        reject_trailing r;
        let ( let* ) = Result.bind in
        let* () =
          match rq_deadline_ms with
          | Some ms when ms <= 0 ->
              Error (id, Bad_request, "deadline_ms must be a positive integer")
          | _ -> Ok ()
        in
        let* rp_mode =
          Result.map_error
            (fun e -> (id, Bad_request, e))
            (Arde.Config.parse_mode mode_s)
        in
        let* rp_options =
          match J.parse options_s with
          | Error e -> Error (id, Bad_request, "options: " ^ e)
          | Ok o ->
              Result.map_error
                (fun e -> (id, Bad_request, "options: " ^ e))
                (Arde.Options.of_json o)
        in
        Ok
          (Run
             {
               rq_id = id;
               rq_payload =
                 Rq_program
                   { rp_program; rp_mode; rp_options; rp_record = flags land 1 <> 0 };
               rq_deadline_ms;
               rq_retry;
             })
    | 4 ->
        let id, _flags, rq_deadline_ms, rq_retry = get_run_common r in
        let trace = Tc.get_lpbytes r "trace" in
        reject_trailing r;
        if match rq_deadline_ms with Some ms -> ms <= 0 | None -> false then
          Error (id, Bad_request, "deadline_ms must be a positive integer")
        else
          Ok (Run { rq_id = id; rq_payload = Rq_trace trace; rq_deadline_ms; rq_retry })
    | k ->
        Error
          (J.Null, Bad_request, Printf.sprintf "unknown binary request kind %d" k)
  with
  | r -> r
  | exception Tc.Err e ->
      Error (J.Null, Bad_frame, "binary request: " ^ Tc.error_to_string e)

let parse_request payload =
  match payload_wire payload with
  | Binary -> parse_binary_request payload
  | Json -> parse_json_request payload

let ok_response ~id fields =
  J.Obj
    ([ ("type", J.String "response"); ("id", id); ("ok", J.Bool true) ]
    @ fields)

let error_response ~id code msg =
  J.Obj
    [
      ("type", J.String "response");
      ("id", id);
      ("ok", J.Bool false);
      ( "error",
        J.Obj
          [ ("code", J.String (code_name code)); ("message", J.String msg) ]
      );
    ]

let response_ok j =
  match Option.bind (J.member "ok" j) J.to_bool with
  | Some b -> b
  | None -> false

let response_error j =
  match J.member "error" j with
  | None -> None
  | Some e ->
      let f name =
        Option.value ~default:"" (Option.bind (J.member name e) J.to_str)
      in
      Some (f "code", f "message")

(* Binary responses.  Encoders take the canonical JSON response object —
   every response producer already builds one — and re-package it, so
   the two wires cannot drift: there is exactly one place deciding what
   a response {e means}.  [raw_trace] short-circuits the base64 decode
   when the producer still holds the raw bytes (the record-mode worker). *)

let binary_error_fields ~id ~code ~msg =
  let s = bsink 8 in
  put_id s id;
  Tc.put_lpstr s code;
  Tc.put_lpstr s msg;
  Tc.sink_contents s

let binary_response ?raw_trace resp =
  let id = Option.value (J.member "id" resp) ~default:J.Null in
  match response_error resp with
  | Some (code, msg) -> binary_error_fields ~id ~code ~msg
  | None -> (
      let s = bsink 7 in
      put_id s id;
      match J.member "result" resp with
      | Some result ->
          Tc.put_u8 s 1;
          Tc.put_lpstr s (J.to_string result);
          (match J.member "analysis_cache" resp with
          | Some c ->
              Tc.put_u8 s 1;
              Tc.put_lpstr s (J.to_string c)
          | None -> Tc.put_u8 s 0);
          let trace =
            match raw_trace with
            | Some _ as t -> t
            | None -> (
                match J.member "trace" resp with
                | Some (J.String b64) -> (
                    match Arde.Base64.decode b64 with
                    | Ok raw -> Some raw
                    | Error _ -> None)
                | _ -> None)
          in
          (match trace with
          | Some raw ->
              Tc.put_u8 s 1;
              Tc.put_lpstr s raw
          | None -> Tc.put_u8 s 0);
          Tc.sink_contents s
      | None -> (
          match J.member "stats" resp with
          | Some stats ->
              Tc.put_u8 s 2;
              Tc.put_lpstr s (J.to_string stats);
              Tc.sink_contents s
          | None ->
              Tc.put_u8 s 0;
              Tc.sink_contents s))

let encode_response ?raw_trace ~wire resp =
  match wire with
  | Json -> J.to_string resp
  | Binary -> binary_response ?raw_trace resp

(* The client-side inverse: rebuild the canonical JSON response object,
   so everything downstream of [recv] — retry classification,
   [run_output], byte-identity with [arde run] — is wire-blind.  A
   recovered trace is re-encoded base64 to keep the object shape
   identical to the JSON wire's. *)

let response_of_binary payload =
  let parse_field what txt =
    match J.parse txt with
    | Ok j -> j
    | Error e ->
        raise (Tc.Err (Tc.Corrupt { at = 0; what = what ^ ": " ^ e }))
  in
  match
    let r, kind = binary_envelope payload in
    match kind with
    | 7 -> (
        let id = get_id r in
        match Tc.get_u8 r "ok body kind" with
        | 0 ->
            reject_trailing r;
            Ok (ok_response ~id [ ("pong", J.Bool true) ])
        | 1 ->
            let result = parse_field "result" (Tc.get_lpbytes r "result") in
            let cache =
              if Tc.get_u8 r "cache flag" <> 0 then
                [ ( "analysis_cache",
                    parse_field "analysis_cache"
                      (Tc.get_lpstr r "analysis_cache") ) ]
              else []
            in
            let trace =
              if Tc.get_u8 r "trace flag" <> 0 then
                [ ( "trace",
                    J.String (Arde.Base64.encode (Tc.get_lpbytes r "trace")) )
                ]
              else []
            in
            reject_trailing r;
            Ok (ok_response ~id ([ ("result", result) ] @ cache @ trace))
        | 2 ->
            let stats = parse_field "stats" (Tc.get_lpstr r "stats") in
            reject_trailing r;
            Ok (ok_response ~id [ ("stats", stats) ])
        | k -> Error (Printf.sprintf "unknown ok body kind %d" k))
    | 8 ->
        let id = get_id r in
        let code = Tc.get_lpstr r "error code" in
        let msg = Tc.get_lpstr r "error message" in
        reject_trailing r;
        Ok
          (J.Obj
             [
               ("type", J.String "response");
               ("id", id);
               ("ok", J.Bool false);
               ( "error",
                 J.Obj
                   [ ("code", J.String code); ("message", J.String msg) ] );
             ])
    | k -> Error (Printf.sprintf "unexpected binary response kind %d" k)
  with
  | r -> r
  | exception Tc.Err e -> Error ("binary response: " ^ Tc.error_to_string e)

let parse_hello_ack payload =
  match
    let r, kind = binary_envelope payload in
    if kind <> 2 then
      Error (Printf.sprintf "expected hello-ack, got message kind %d" kind)
    else begin
      let max_frame = Tc.get_varint r "max_frame" in
      reject_trailing r;
      if max_frame <= 0 then Error "hello-ack with a non-positive max_frame"
      else Ok max_frame
    end
  with
  | r -> r
  | exception Tc.Err e -> Error ("hello-ack: " ^ Tc.error_to_string e)

(* ------------------------------------------------------------------ *)
(* The supervisor <-> worker wire                                     *)

(* Workers speak the same frame codec over a socketpair held by the
   supervisor.  Request and response bodies cross this hop as {e raw
   bytes}, never re-parsed or re-serialized: a [job] header frame is
   followed by one frame holding the client's request verbatim (so the
   worker's spool journal records exactly what arrived on the public
   socket), and a [done] header frame — carrying the outcome code the
   supervisor needs for its counters — is followed by one frame holding
   the response bytes the supervisor forwards untouched.  Run requests
   are several hundred kilobytes of program text; parsing them once per
   process instead of once per hop is most of the serving hot path. *)

let hello_frame ~worker ~pid =
  J.Obj
    [ ("type", J.String "hello"); ("worker", J.Int worker); ("pid", J.Int pid) ]

let job_frame ~job ~digest =
  J.Obj
    [
      ("type", J.String "job");
      ("job", J.Int job);
      ("digest", J.String digest);
    ]

let done_frame ?store ~job ~spool_error ~code () =
  J.Obj
    ([
       ("type", J.String "done");
       ("job", J.Int job);
       ("spool_error", J.Bool spool_error);
       ("code", J.String code);
     ]
    @ match store with None -> [] | Some s -> [ ("store", s) ])

type worker_msg =
  | W_hello of int  (** the worker's pid *)
  | W_done of {
      wd_job : int;
      wd_spool_error : bool;
      wd_code : string;
      wd_store : J.t option;
          (** the bundle-store counter movement this request caused *)
    }
      (** the response bytes follow in the next frame, verbatim *)

let parse_worker_msg payload =
  match J.parse_checked payload with
  | Error e -> Error (J.error_to_string e)
  | Ok j -> (
      match Option.bind (J.member "type" j) J.to_str with
      | Some "hello" -> (
          match Option.bind (J.member "pid" j) J.to_int with
          | Some pid -> Ok (W_hello pid)
          | None -> Error "hello without pid")
      | Some "done" -> (
          match
            ( Option.bind (J.member "job" j) J.to_int,
              Option.bind (J.member "code" j) J.to_str )
          with
          | Some wd_job, Some wd_code ->
              let wd_spool_error =
                Option.value ~default:false
                  (Option.bind (J.member "spool_error" j) J.to_bool)
              in
              let wd_store = J.member "store" j in
              Ok (W_done { wd_job; wd_spool_error; wd_code; wd_store })
          | _ -> Error "done without job id or code")
      | Some other -> Error (Printf.sprintf "unknown worker message %S" other)
      | None -> Error "worker message without type")

let parse_job payload =
  match J.parse_checked payload with
  | Error e -> Error (J.error_to_string e)
  | Ok j -> (
      match
        ( Option.bind (J.member "job" j) J.to_int,
          Option.bind (J.member "digest" j) J.to_str )
      with
      | Some job, Some digest -> Ok (job, digest)
      | _ -> Error "job frame without job id or digest")

(* ------------------------------------------------------------------ *)
(* The shared one-shot output shape                                   *)

let run_output ~workload ?expectation ?analysis_cache result_json =
  let ( let* ) = Result.bind in
  let* report =
    match J.member "report" result_json with
    | Some r -> Arde.Report.of_json r
    | None -> Error "result has no \"report\" field"
  in
  let* health =
    match J.member "health" result_json with
    | Some h -> Arde.Driver.health_of_json h
    | None -> Error "result has no \"health\" field"
  in
  let races = Arde.Report.n_contexts report > 0 in
  let code =
    match health.Arde.Driver.h_verdict with
    | Arde.Driver.Failed -> 3
    | Arde.Driver.Degraded -> 2
    | Arde.Driver.Healthy -> if races then 1 else 0
  in
  let verdict =
    Option.map
      (fun exp ->
        Arde.Classify.classify exp ~reported:(Arde.Report.racy_bases report))
      expectation
  in
  let obj =
    J.Obj
      ([ ("workload", J.String workload); ("result", result_json) ]
      @ (match verdict with
        | None -> []
        | Some v ->
            [
              ( "verdict",
                J.String
                  (match Arde.Classify.outcome_of v with
                  | Arde.Classify.Correct -> "correct"
                  | Arde.Classify.False_alarm -> "false-alarm"
                  | Arde.Classify.Missed_race -> "missed-race") );
            ])
      @ (match analysis_cache with
        | None -> []
        | Some ac -> [ ("analysis_cache", ac) ])
      @ [ ("exit_code", J.Int code) ])
  in
  Ok (obj, code)
