(* Framing and schemas for the serve socket.  See protocol.mli. *)

module J = Arde.Json

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)

let default_max_frame = 8 * 1024 * 1024

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write_frame fd payload =
  let s = frame payload in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

type decoder = { mutable dbuf : Bytes.t; mutable dlen : int; dmax : int }

let decoder ?(max_frame = default_max_frame) () =
  { dbuf = Bytes.create 4096; dlen = 0; dmax = max_frame }

type frame_result = Frame of string | Await | Too_large of int

let decoder_pending d = d.dlen

let feed d src off len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Protocol.feed";
  let need = d.dlen + len in
  if need > Bytes.length d.dbuf then begin
    let cap = ref (Bytes.length d.dbuf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit d.dbuf 0 nb 0 d.dlen;
    d.dbuf <- nb
  end;
  Bytes.blit src off d.dbuf d.dlen len;
  d.dlen <- d.dlen + len

let next_frame d =
  if d.dlen < 4 then Await
  else
    let n = Int32.to_int (Bytes.get_int32_be d.dbuf 0) in
    if n < 0 || n > d.dmax then Too_large (n land 0xFFFFFFFF)
    else if d.dlen < 4 + n then Await
    else begin
      let payload = Bytes.sub_string d.dbuf 4 n in
      let rest = d.dlen - 4 - n in
      Bytes.blit d.dbuf (4 + n) d.dbuf 0 rest;
      d.dlen <- rest;
      Frame payload
    end

(* ------------------------------------------------------------------ *)
(* Error codes                                                        *)

type error_code =
  | Bad_frame
  | Bad_request
  | Overloaded
  | Draining
  | Internal
  | Worker_crashed
  | Deadline_expired

let code_name = function
  | Bad_frame -> "bad_frame"
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Internal -> "internal"
  | Worker_crashed -> "worker_crashed"
  | Deadline_expired -> "deadline_expired"

(* Idempotent-safe to retry: the request provably did not complete a
   detection run whose answer the client then threw away — the daemon
   was not reachable, refused before execution, or the executing worker
   died.  (Detection is pure, so even a lost completed run would be safe
   to re-run; but [overloaded] is the server asking for {e less}
   traffic, so the client-side policy deliberately excludes it.) *)
let retryable_code = function
  | "worker_crashed" | "draining" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)

(* What a run request asks the worker to do: execute a program (and
   possibly record it), or replay a recorded trace.  The trace travels
   base64-inside-JSON on the wire but is raw binary here — protocol
   parsing is the only place that knows about the encoding. *)
type program_request = {
  rp_program : string;
  rp_mode : Arde.Config.mode;
  rp_options : Arde.Options.t;
  rp_record : bool;
}

type run_payload = Rq_program of program_request | Rq_trace of string

type run_request = {
  rq_id : J.t;
  rq_payload : run_payload;
  rq_deadline_ms : int option;
  rq_retry : int; (* which retry attempt this is; 0 = first send *)
}

type request = Run of run_request | Stats of J.t | Ping of J.t

let run_json ?(id = J.Null) ?deadline_ms ?retry payload_fields =
  J.Obj
    ([ ("type", J.String "run"); ("id", id) ]
    @ payload_fields
    @ (match deadline_ms with
      | None -> []
      | Some d -> [ ("deadline_ms", J.Int d) ])
    @
    match retry with
    | None | Some 0 -> []
    | Some n -> [ ("retry", J.Int n) ])

let run_request_json ?id ?deadline_ms ?retry ?(record = false) ~program
    ~mode ~options () =
  run_json ?id ?deadline_ms ?retry
    ([
       ("program", J.String program);
       ("mode", J.String (Arde.Config.mode_id mode));
       ("options", Arde.Options.to_json options);
     ]
    @ if record then [ ("record", J.Bool true) ] else [])

let replay_request_json ?id ?deadline_ms ?retry ~trace () =
  run_json ?id ?deadline_ms ?retry
    [ ("trace", J.String (Arde.Base64.encode trace)) ]

let stats_request ?(id = J.Null) () =
  J.Obj [ ("type", J.String "stats"); ("id", id) ]

let ping_request ?(id = J.Null) () =
  J.Obj [ ("type", J.String "ping"); ("id", id) ]

(* Requests are shallow (the program travels as a string), so a tight
   depth limit guards the socket against nesting bombs long before the
   parser's own default would. *)
let request_max_depth = 64

let parse_request payload =
  match J.parse_checked ~max_depth:request_max_depth payload with
  | Error e -> Error (J.Null, Bad_frame, J.error_to_string e)
  | Ok j -> (
      let id = Option.value (J.member "id" j) ~default:J.Null in
      let str_field name =
        match Option.bind (J.member name j) J.to_str with
        | Some s -> Ok s
        | None ->
            Error (id, Bad_request,
                   Printf.sprintf "missing or ill-typed field %S" name)
      in
      match Option.bind (J.member "type" j) J.to_str with
      | Some "ping" -> Ok (Ping id)
      | Some "stats" -> Ok (Stats id)
      | Some "run" ->
          let ( let* ) = Result.bind in
          let* rq_payload =
            match (J.member "trace" j, J.member "program" j) with
            | Some _, Some _ ->
                Error
                  (id, Bad_request,
                   "request carries both \"program\" and \"trace\"")
            | Some t, None -> (
                match J.to_str t with
                | None ->
                    Error
                      (id, Bad_request, "missing or ill-typed field \"trace\"")
                | Some b64 -> (
                    match Arde.Base64.decode b64 with
                    | Ok trace -> Ok (Rq_trace trace)
                    | Error e -> Error (id, Bad_request, "trace: " ^ e)))
            | None, _ ->
                let* rp_program = str_field "program" in
                let* mode_s = str_field "mode" in
                let* rp_mode =
                  Result.map_error
                    (fun e -> (id, Bad_request, e))
                    (Arde.Config.parse_mode mode_s)
                in
                let* rp_options =
                  match J.member "options" j with
                  | None -> Ok (Arde.Options.make ())
                  | Some o ->
                      Result.map_error
                        (fun e -> (id, Bad_request, "options: " ^ e))
                        (Arde.Options.of_json o)
                in
                let rp_record =
                  Option.value ~default:false
                    (Option.bind (J.member "record" j) J.to_bool)
                in
                Ok (Rq_program { rp_program; rp_mode; rp_options; rp_record })
          in
          let* rq_deadline_ms =
            match J.member "deadline_ms" j with
            | None | Some J.Null -> Ok None
            | Some d -> (
                match J.to_int d with
                | Some ms when ms > 0 -> Ok (Some ms)
                | _ ->
                    Error (id, Bad_request,
                           "deadline_ms must be a positive integer"))
          in
          let rq_retry =
            match Option.bind (J.member "retry" j) J.to_int with
            | Some n when n > 0 -> n
            | _ -> 0
          in
          Ok (Run { rq_id = id; rq_payload; rq_deadline_ms; rq_retry })
      | Some other ->
          Error (id, Bad_request,
                 Printf.sprintf "unknown request type %S" other)
      | None -> Error (id, Bad_request, "missing field \"type\""))

(* ------------------------------------------------------------------ *)
(* Responses                                                          *)

let ok_response ~id fields =
  J.Obj
    ([ ("type", J.String "response"); ("id", id); ("ok", J.Bool true) ]
    @ fields)

let error_response ~id code msg =
  J.Obj
    [
      ("type", J.String "response");
      ("id", id);
      ("ok", J.Bool false);
      ( "error",
        J.Obj
          [ ("code", J.String (code_name code)); ("message", J.String msg) ]
      );
    ]

let response_ok j =
  match Option.bind (J.member "ok" j) J.to_bool with
  | Some b -> b
  | None -> false

let response_error j =
  match J.member "error" j with
  | None -> None
  | Some e ->
      let f name =
        Option.value ~default:"" (Option.bind (J.member name e) J.to_str)
      in
      Some (f "code", f "message")

(* ------------------------------------------------------------------ *)
(* The supervisor <-> worker wire                                     *)

(* Workers speak the same frame codec over a socketpair held by the
   supervisor.  Request and response bodies cross this hop as {e raw
   bytes}, never re-parsed or re-serialized: a [job] header frame is
   followed by one frame holding the client's request verbatim (so the
   worker's spool journal records exactly what arrived on the public
   socket), and a [done] header frame — carrying the outcome code the
   supervisor needs for its counters — is followed by one frame holding
   the response bytes the supervisor forwards untouched.  Run requests
   are several hundred kilobytes of program text; parsing them once per
   process instead of once per hop is most of the serving hot path. *)

let hello_frame ~worker ~pid =
  J.Obj
    [ ("type", J.String "hello"); ("worker", J.Int worker); ("pid", J.Int pid) ]

let job_frame ~job ~digest =
  J.Obj
    [
      ("type", J.String "job");
      ("job", J.Int job);
      ("digest", J.String digest);
    ]

let done_frame ~job ~spool_error ~code =
  J.Obj
    [
      ("type", J.String "done");
      ("job", J.Int job);
      ("spool_error", J.Bool spool_error);
      ("code", J.String code);
    ]

type worker_msg =
  | W_hello of int  (** the worker's pid *)
  | W_done of { wd_job : int; wd_spool_error : bool; wd_code : string }
      (** the response bytes follow in the next frame, verbatim *)

let parse_worker_msg payload =
  match J.parse_checked payload with
  | Error e -> Error (J.error_to_string e)
  | Ok j -> (
      match Option.bind (J.member "type" j) J.to_str with
      | Some "hello" -> (
          match Option.bind (J.member "pid" j) J.to_int with
          | Some pid -> Ok (W_hello pid)
          | None -> Error "hello without pid")
      | Some "done" -> (
          match
            ( Option.bind (J.member "job" j) J.to_int,
              Option.bind (J.member "code" j) J.to_str )
          with
          | Some wd_job, Some wd_code ->
              let wd_spool_error =
                Option.value ~default:false
                  (Option.bind (J.member "spool_error" j) J.to_bool)
              in
              Ok (W_done { wd_job; wd_spool_error; wd_code })
          | _ -> Error "done without job id or code")
      | Some other -> Error (Printf.sprintf "unknown worker message %S" other)
      | None -> Error "worker message without type")

let parse_job payload =
  match J.parse_checked payload with
  | Error e -> Error (J.error_to_string e)
  | Ok j -> (
      match
        ( Option.bind (J.member "job" j) J.to_int,
          Option.bind (J.member "digest" j) J.to_str )
      with
      | Some job, Some digest -> Ok (job, digest)
      | _ -> Error "job frame without job id or digest")

(* ------------------------------------------------------------------ *)
(* The shared one-shot output shape                                   *)

let run_output ~workload ?expectation ?analysis_cache result_json =
  let ( let* ) = Result.bind in
  let* report =
    match J.member "report" result_json with
    | Some r -> Arde.Report.of_json r
    | None -> Error "result has no \"report\" field"
  in
  let* health =
    match J.member "health" result_json with
    | Some h -> Arde.Driver.health_of_json h
    | None -> Error "result has no \"health\" field"
  in
  let races = Arde.Report.n_contexts report > 0 in
  let code =
    match health.Arde.Driver.h_verdict with
    | Arde.Driver.Failed -> 3
    | Arde.Driver.Degraded -> 2
    | Arde.Driver.Healthy -> if races then 1 else 0
  in
  let verdict =
    Option.map
      (fun exp ->
        Arde.Classify.classify exp ~reported:(Arde.Report.racy_bases report))
      expectation
  in
  let obj =
    J.Obj
      ([ ("workload", J.String workload); ("result", result_json) ]
      @ (match verdict with
        | None -> []
        | Some v ->
            [
              ( "verdict",
                J.String
                  (match Arde.Classify.outcome_of v with
                  | Arde.Classify.Correct -> "correct"
                  | Arde.Classify.False_alarm -> "false-alarm"
                  | Arde.Classify.Missed_race -> "missed-race") );
            ])
      @ (match analysis_cache with
        | None -> []
        | Some ac -> [ ("analysis_cache", ac) ])
      @ [ ("exit_code", J.Int code) ])
  in
  Ok (obj, code)
