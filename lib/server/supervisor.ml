(* Worker-process lifecycle for the crash-only server.  See
   supervisor.mli. *)

module J = Arde.Json
module P = Protocol

type knobs = {
  k_exec : string;
  k_spool_root : string;
  k_jobs : int;
  k_max_frame : int;
  k_chaos_plan : string;
  k_store_dir : string; (* bundle-store directory; "" = store disabled *)
  k_store_max_mb : int;
  k_restart_backoff_ms : int;
  k_restart_backoff_max_ms : int;
  k_breaker_threshold : int;
  k_breaker_window_s : float;
  k_log : string -> unit;
}

type wstate = Starting | Live | Down | Broken

let state_name = function
  | Starting -> "starting"
  | Live -> "live"
  | Down -> "down"
  | Broken -> "broken"

type wproc = {
  w_index : int;
  mutable w_pid : int; (* -1 when not running *)
  mutable w_fd : Unix.file_descr option;
  mutable w_dec : P.decoder;
  mutable w_out : Util.outbuf;
  mutable w_state : wstate;
  mutable w_restarts : int;
  mutable w_crashes : int;
  mutable w_served : int;
  mutable w_last_crash : string option;
  mutable w_recent : float list; (* crash timestamps inside the window *)
  mutable w_backoff_ms : int;
  mutable w_retry_at : float; (* Down: respawn time; Broken: half-open time *)
  mutable w_kill_by : float; (* watchdog deadline while a job is in flight *)
  mutable w_pending_reason : string option; (* set by deliberate kills *)
}

type death = {
  d_index : int;
  d_reason : string;
  d_crash : bool; (* false only for a clean exit during drain *)
  d_bundle : string option;
}

type t = {
  knobs : knobs;
  spool : Spool.t;
  workers : wproc array;
  store : Store.t option;
      (* the supervisor never loads or saves bundles — this handle only
         scans the directory for [stats_json]'s usage figures *)
  mutable store_stats : Store.stats;
      (* daemon-wide totals, aggregated from worker [done] frames *)
  mutable crashes : int;
  mutable restarts : int;
  mutable watchdog_kills : int;
  mutable bundles_sealed : int;
}

let worker t i = t.workers.(i)
let n_workers t = Array.length t.workers
let spool t = t.spool

(* ------------------------------------------------------------------ *)
(* Spawning                                                           *)

let spawn t w =
  let parent, child = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.set_nonblock parent;
  Unix.set_close_on_exec parent;
  let tail =
    Worker.worker_args ~spool:t.knobs.k_spool_root ~index:w.w_index
      ~jobs:t.knobs.k_jobs ~max_frame:t.knobs.k_max_frame
      ~chaos_plan:t.knobs.k_chaos_plan ~store:t.knobs.k_store_dir
      ~store_max_mb:t.knobs.k_store_max_mb
  in
  let argv = Array.append [| t.knobs.k_exec |] tail in
  (* The socketpair rides in as the worker's stdin and carries frames in
     BOTH directions: host binaries may link libraries that print to
     stdout during module initialisation (before {!Worker.hook} runs),
     so the worker's stdout cannot be trusted as a frame channel.  It is
     pointed at stderr instead, where stray prints are diagnostics, not
     protocol corruption. *)
  match Unix.create_process t.knobs.k_exec argv child Unix.stderr Unix.stderr with
  | exception e ->
      (try Unix.close parent with Unix.Unix_error _ -> ());
      (try Unix.close child with Unix.Unix_error _ -> ());
      raise e
  | pid ->
      (try Unix.close child with Unix.Unix_error _ -> ());
      w.w_pid <- pid;
      w.w_fd <- Some parent;
      w.w_dec <- P.decoder ();
      w.w_out <- Util.outbuf ();
      w.w_state <- Starting;
      w.w_kill_by <- infinity;
      w.w_pending_reason <- None;
      t.knobs.k_log
        (Printf.sprintf "worker %d spawned (pid %d)" w.w_index pid)

let create ~knobs ~spool ~workers =
  let store =
    if knobs.k_store_dir = "" then None
    else
      match
        Store.create ~max_mb:knobs.k_store_max_mb ~dir:knobs.k_store_dir ()
      with
      | Ok s -> Some s
      | Error e ->
          knobs.k_log (e ^ " (store stats disabled)");
          None
  in
  let t =
    {
      knobs;
      spool;
      store;
      store_stats = Store.zero_stats;
      workers =
        Array.init (max 1 workers) (fun i ->
            {
              w_index = i;
              w_pid = -1;
              w_fd = None;
              w_dec = P.decoder ();
              w_out = Util.outbuf ();
              w_state = Down;
              w_restarts = 0;
              w_crashes = 0;
              w_served = 0;
              w_last_crash = None;
              w_recent = [];
              w_backoff_ms = knobs.k_restart_backoff_ms;
              w_retry_at = 0.;
              w_kill_by = infinity;
              w_pending_reason = None;
            });
      crashes = 0;
      restarts = 0;
      watchdog_kills = 0;
      bundles_sealed = 0;
    }
  in
  Array.iter (fun w -> spawn t w) t.workers;
  t

(* ------------------------------------------------------------------ *)
(* Routing                                                            *)

let is_live t i = t.workers.(i).w_state = Live

let route t ~preferred =
  let n = n_workers t in
  let preferred = ((preferred mod n) + n) mod n in
  let scan pred =
    let rec go k =
      if k = n then None
      else
        let i = (preferred + k) mod n in
        if pred t.workers.(i) then Some i else go (k + 1)
    in
    go 0
  in
  (* Digest affinity first; a dead-but-restarting preferred slot keeps
     its queue (the restarted worker re-warms against the same
     digests), but if the preferred slot's circuit is open the request
     must not wait out the cooldown. *)
  match t.workers.(preferred).w_state with
  | Starting | Live | Down -> Some preferred
  | Broken -> scan (fun w -> w.w_state <> Broken)

let any_usable t = Array.exists (fun w -> w.w_state <> Broken) t.workers

(* ------------------------------------------------------------------ *)
(* Dispatch bookkeeping                                               *)

let note_hello t i =
  let w = t.workers.(i) in
  w.w_state <- Live;
  w.w_backoff_ms <- t.knobs.k_restart_backoff_ms;
  t.knobs.k_log (Printf.sprintf "worker %d ready (pid %d)" i w.w_pid)

let note_dispatch t i ~kill_by = (worker t i).w_kill_by <- kill_by

let note_done t i =
  let w = worker t i in
  w.w_served <- w.w_served + 1;
  w.w_kill_by <- infinity

(* Fold a worker-reported store-counter delta (a [done] frame's [store]
   field) into the daemon-wide totals. *)
let note_store t json =
  t.store_stats <- Store.stats_add t.store_stats (Store.stats_of_json json)

let send_to_worker t i payload =
  let w = worker t i in
  match w.w_fd with
  | None -> ()
  | Some fd -> (
      Util.outbuf_push w.w_out (P.frame payload);
      match Util.outbuf_flush w.w_out fd with
      | Util.Flushed | Util.Partial -> ()
      | Util.Peer_gone -> () (* the reaper will notice *))

(* ------------------------------------------------------------------ *)
(* Watchdog                                                           *)

let due_watchdog t ~now =
  Array.to_list t.workers
  |> List.filter_map (fun w ->
         if w.w_pid >= 0 && w.w_kill_by < now then Some w.w_index else None)

let kill_watchdog t i =
  let w = worker t i in
  if w.w_pid >= 0 then begin
    w.w_pending_reason <- Some "watchdog";
    t.watchdog_kills <- t.watchdog_kills + 1;
    t.knobs.k_log
      (Printf.sprintf "worker %d (pid %d) overran the watchdog: SIGKILL" i
         w.w_pid);
    try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Death and rebirth                                                  *)

let decoder_mid_frame (d : P.decoder) =
  match P.next_frame d with
  | P.Frame _ | P.Too_large _ -> true (* unconsumed data: also suspicious *)
  | P.Await -> P.decoder_pending d > 0

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal %d" s

let status_reason = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED s -> "killed by " ^ signal_name s
  | Unix.WSTOPPED s -> "stopped by " ^ signal_name s

(* Finalize one dead worker: close the pipe, seal any journaled
   request into a crash bundle, and schedule the restart (backoff,
   or circuit-breaker open on a restart storm). *)
let finalize_death t w status ~now ~draining =
  (match w.w_fd with
  | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  let torn = decoder_mid_frame w.w_dec in
  let pid = w.w_pid in
  w.w_fd <- None;
  w.w_pid <- -1;
  w.w_kill_by <- infinity;
  let clean = (not torn) && draining && status = Unix.WEXITED 0 in
  let reason =
    match w.w_pending_reason with
    | Some r -> r
    | None ->
        status_reason status ^ (if torn then " (torn reply frame)" else "")
  in
  w.w_pending_reason <- None;
  if clean then begin
    w.w_state <- Down;
    w.w_retry_at <- infinity;
    { d_index = w.w_index; d_reason = "drained"; d_crash = false;
      d_bundle = None }
  end
  else begin
    w.w_crashes <- w.w_crashes + 1;
    t.crashes <- t.crashes + 1;
    w.w_last_crash <- Some reason;
    let bundle =
      match Spool.seal t.spool ~worker:w.w_index ~reason with
      | Ok (Some path) ->
          t.bundles_sealed <- t.bundles_sealed + 1;
          t.knobs.k_log
            (Printf.sprintf "worker %d crash bundle sealed: %s" w.w_index path);
          Some path
      | Ok None -> None
      | Error e ->
          t.knobs.k_log
            (Printf.sprintf "worker %d: crash bundle not sealed: %s" w.w_index
               e);
          None
    in
    (* Restart policy: exponential backoff per consecutive crash, and a
       circuit breaker when crashes bunch up faster than the window. *)
    let window_floor = now -. t.knobs.k_breaker_window_s in
    w.w_recent <- now :: List.filter (fun ts -> ts > window_floor) w.w_recent;
    if draining then begin
      w.w_state <- Down;
      w.w_retry_at <- infinity
    end
    else if List.length w.w_recent >= t.knobs.k_breaker_threshold then begin
      w.w_state <- Broken;
      w.w_retry_at <- now +. t.knobs.k_breaker_window_s;
      t.knobs.k_log
        (Printf.sprintf
           "worker %d: restart storm (%d crashes in %.1fs): circuit open for \
            %.1fs"
           w.w_index (List.length w.w_recent) t.knobs.k_breaker_window_s
           t.knobs.k_breaker_window_s)
    end
    else begin
      w.w_state <- Down;
      w.w_retry_at <- now +. (float_of_int w.w_backoff_ms /. 1000.);
      w.w_backoff_ms <-
        min t.knobs.k_restart_backoff_max_ms (w.w_backoff_ms * 2)
    end;
    t.knobs.k_log
      (Printf.sprintf "worker %d (pid %d) died: %s" w.w_index pid reason);
    { d_index = w.w_index; d_reason = reason; d_crash = true;
      d_bundle = bundle }
  end

let reap t ~now ~draining =
  Array.to_list t.workers
  |> List.filter_map (fun w ->
         if w.w_pid < 0 then None
         else
           match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
           | 0, _ -> None
           | _, status -> Some (finalize_death t w status ~now ~draining)
           | exception Unix.Unix_error (ECHILD, _, _) ->
               Some (finalize_death t w (Unix.WEXITED 127) ~now ~draining)
           | exception Unix.Unix_error (EINTR, _, _) -> None)

let respawn_due t ~now ~draining =
  if not draining then
    Array.iter
      (fun w ->
        match w.w_state with
        | (Down | Broken) when w.w_pid < 0 && w.w_retry_at <= now ->
            (* A Broken slot re-closing its circuit gets one half-open
               probe; if it crashes again the window refills at once. *)
            w.w_restarts <- w.w_restarts + 1;
            t.restarts <- t.restarts + 1;
            spawn t w
        | _ -> ())
      t.workers

let next_timer t =
  Array.fold_left
    (fun acc w ->
      let acc =
        if w.w_pid >= 0 && w.w_kill_by < infinity then min acc w.w_kill_by
        else acc
      in
      if w.w_pid < 0 && w.w_retry_at < infinity then min acc w.w_retry_at
      else acc)
    infinity t.workers

(* ------------------------------------------------------------------ *)
(* Shutdown                                                           *)

let shutdown t ~grace =
  (* Closing a worker's stdin/stdout pipe is the drain signal; workers
     exit after finishing their current (already answered) job. *)
  Array.iter
    (fun w ->
      match w.w_fd with
      | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          w.w_fd <- None
      | None -> ())
    t.workers;
  let deadline = Unix.gettimeofday () +. grace in
  let rec wait_all () =
    let pending =
      Array.to_list t.workers |> List.filter (fun w -> w.w_pid >= 0)
    in
    if pending <> [] then
      if Unix.gettimeofday () > deadline then
        List.iter
          (fun w ->
            (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Util.waitpid [] w.w_pid)
             with Unix.Unix_error _ -> ());
            w.w_pid <- -1)
          pending
      else begin
        List.iter
          (fun w ->
            match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
            | 0, _ -> ()
            | _, _ -> w.w_pid <- -1
            | exception Unix.Unix_error (ECHILD, _, _) -> w.w_pid <- -1
            | exception Unix.Unix_error (EINTR, _, _) -> ())
          pending;
        if Array.exists (fun w -> w.w_pid >= 0) t.workers then begin
          Util.sleepf 0.02;
          wait_all ()
        end
      end
  in
  wait_all ()

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)

let store_json t =
  match t.store with
  | None -> J.Obj [ ("enabled", J.Bool false) ]
  | Some s ->
      let entries, bytes = Store.usage s in
      let counters =
        match Store.stats_to_json t.store_stats with
        | J.Obj fields -> fields
        | _ -> []
      in
      J.Obj
        ([
           ("enabled", J.Bool true);
           ("dir", J.String (Store.dir s));
           ("entries", J.Int entries);
           ("bytes", J.Int bytes);
         ]
        @ counters)

let stats_json t =
  J.Obj
    [
      ("store", store_json t);
      ("crashes", J.Int t.crashes);
      ("restarts", J.Int t.restarts);
      ("watchdog_kills", J.Int t.watchdog_kills);
      ("bundles_sealed", J.Int t.bundles_sealed);
      ( "workers",
        J.List
          (Array.to_list t.workers
          |> List.map (fun w ->
                 J.Obj
                   ([
                      ("index", J.Int w.w_index);
                      ("state", J.String (state_name w.w_state));
                      ("pid", J.Int w.w_pid);
                      ("served", J.Int w.w_served);
                      ("crashes", J.Int w.w_crashes);
                      ("restarts", J.Int w.w_restarts);
                    ]
                   @
                   match w.w_last_crash with
                   | None -> []
                   | Some r -> [ ("last_crash", J.String r) ]))) );
    ]
