(** Memory-base interning.

    Global bases are strings in TIR, but the detector's per-event hot path
    cannot afford to hash one per access.  [of_program] assigns every base
    a dense integer id once, at compile time; machine events then carry the
    id alongside the name, and detectors key their shadow state by it —
    flat array indexing instead of polymorphic tuple hashing.

    The reserved [__thread_done] base is always interned (with extent at
    least [max_threads]) because the machine emits a write to it on every
    thread exit, declared or not. *)

type t

val of_program : Types.program -> t

val id : t -> string -> int
(** Dense id of a base, or [-1] if the program never declared it. *)

val name : t -> int -> string
val size : t -> int -> int
(** Interned extent of the base (cells). *)

val declared : t -> int -> bool
(** Whether the program itself declared the global ([__thread_done] may be
    interned without being declared — the machine then emits its exit
    events but never stores to it). *)

val n_bases : t -> int
val total_cells : t -> int
