open Types
module B = Builder

type style = Compact | Realistic | Futex

let style_name = function
  | Compact -> "compact"
  | Realistic -> "realistic"
  | Futex -> "futex"

let parse_style = function
  | "compact" -> Ok Compact
  | "realistic" -> Ok Realistic
  | "futex" -> Ok Futex
  | s ->
      Error
        (Printf.sprintf "unknown lowering style %S (compact, realistic, futex)"
           s)

let is_lowered_helper name =
  String.length name >= 2 && name.[0] = '_' && name.[1] = '_'

(* Helper-function names, one per (primitive, global base). *)
let lock_fn m = "__lock:" ^ m
let unlock_fn m = "__unlock:" ^ m
let wait_fn cv m = "__wait:" ^ cv ^ ":" ^ m
let signal_fn cv = "__signal:" ^ cv
let barinit_fn b = "__barinit:" ^ b
let barwait_fn b = "__barwait:" ^ b
let seminit_fn s = "__seminit:" ^ s
let sempost_fn s = "__sempost:" ^ s
let semwait_fn s = "__semwait:" ^ s
let join_fn = "__join"
let chk_fn op base = "__chk" ^ op ^ ":" ^ base

let gen_global b = b ^ "__gen"
let total_global b = b ^ "__total"

(* Double-checked condition helper, e.g. __chkne:flag(idx, old) = 1 iff
   flag[idx] <> old.  Four basic blocks: with the three-block spin loop
   that calls it, the effective window is 7, the paper's sweet spot. *)
let chk_helper op base =
  let test c = B.cmp op c (B.r "v") (B.r "old") in
  let test0 c v = B.cmp op c (B.r v) (B.imm 0) in
  let has_old = match op with Ne -> true | _ -> false in
  let params = if has_old then [ "idx"; "old" ] else [ "idx" ] in
  let cond1 = if has_old then test "c" else test0 "c" "v" in
  let cond2 =
    if has_old then B.cmp op "c2" (B.r "v2") (B.r "old") else test0 "c2" "v2"
  in
  B.func
    (chk_fn (match op with Ne -> "ne" | Eq -> "eq0" | _ -> "gt0") base)
    ~params
    [
      B.blk "e"
        [ B.load "v" (B.gi base (B.r "idx")); cond1 ]
        (B.br (B.r "c") "yes" "rechk");
      B.blk "rechk"
        [ B.load "v2" (B.gi base (B.r "idx")); cond2 ]
        (B.br (B.r "c2") "yes" "no");
      B.blk "yes" [] (B.ret (Some (B.imm 1)));
      B.blk "no" [] (B.ret (Some (B.imm 0)));
    ]

(* The three-block spinning read loop around a condition, either inline
   (Compact) or through a checker call (Realistic).  [exit_lbl] receives
   control once the condition holds. *)
let spin_blocks style ~tag ~cond_call ~inline_cond ~exit_lbl =
  let test = tag ^ "test" and busy = tag ^ "busy" and pause = tag ^ "pause" in
  match style with
  | Realistic ->
      [
        B.blk test [ cond_call "ok" ] (B.br (B.r "ok") exit_lbl busy);
        B.blk busy [ B.yield ] (B.goto pause);
        B.blk pause [ B.nop ] (B.goto test);
      ]
  | Compact ->
      [
        B.blk test (inline_cond "ok") (B.br (B.r "ok") exit_lbl busy);
        B.blk busy [ B.yield ] (B.goto test);
      ]
  | Futex ->
      (* Models a futex-based slow path: after a failed check the thread
         "sleeps" through extra bookkeeping blocks, pushing the loop body
         to 6 blocks (10 with the condition helper) — beyond any window k
         the paper evaluates, hence unrecoverable by spin detection. *)
      let sleep i = tag ^ "slp" ^ string_of_int i in
      [
        B.blk test [ cond_call "ok" ] (B.br (B.r "ok") exit_lbl busy);
        B.blk busy [ B.yield ] (B.goto (sleep 0));
        B.blk (sleep 0) [ B.nop ] (B.goto (sleep 1));
        B.blk (sleep 1) [ B.nop ] (B.goto (sleep 2));
        B.blk (sleep 2) [ B.yield ] (B.goto pause);
        B.blk pause [ B.nop ] (B.goto test);
      ]

let spin_entry tag = tag ^ "test"

(* Mutex: test-and-test-and-set.  The pure read loop (is the word 0?) is
   nested inside the CAS retry loop; only the former matches the spin
   criteria, exactly like a futex-based pthread mutex fast path. *)
let lock_helper style m =
  let cond_call d = B.call ~ret:d (chk_fn "eq0" m) [ B.r "idx" ] in
  let inline_cond d =
    [ B.load "v" (B.gi m (B.r "idx")); B.cmp Eq d (B.r "v") (B.imm 0) ]
  in
  let loop = spin_blocks style ~tag:"l" ~cond_call ~inline_cond ~exit_lbl:"try" in
  B.func (lock_fn m) ~params:[ "idx" ]
    ([
       B.blk "entry" [] (B.goto "outer");
       B.blk "outer" [] (B.goto (spin_entry "l"));
     ]
    @ loop
    @ [
        B.blk "try"
          [ B.cas "c" (B.gi m (B.r "idx")) (B.imm 0) (B.imm 1) ]
          (B.br (B.r "c") "done" "outer");
        B.blk "done" [] B.ret0;
      ])

(* The release store must be atomic (as in a real futex unlock): a locker
   whose CAS succeeds without re-reading the word — test saw it free before
   an intervening lock/unlock cycle — synchronizes through the atomic
   chain rather than through the spin edge. *)
let unlock_helper m =
  B.func (unlock_fn m) ~params:[ "idx" ]
    [
      B.blk "entry"
        [ B.rmw Rmw_exchange "old" (B.gi m (B.r "idx")) (B.imm 0) ]
        B.ret0;
    ]

(* Condition variable: a sequence counter bumped by signal/broadcast;
   wait releases the mutex and spins until the counter moves. *)
let wait_helper style cv m =
  let cond_call d = B.call ~ret:d (chk_fn "ne" cv) [ B.r "cvi"; B.r "s" ] in
  let inline_cond d =
    [ B.load "v" (B.gi cv (B.r "cvi")); B.cmp Ne d (B.r "v") (B.r "s") ]
  in
  let loop =
    spin_blocks style ~tag:"w" ~cond_call ~inline_cond ~exit_lbl:"wdone"
  in
  (* Under [Futex] the mutex itself stays a native (kernel) object — see
     [rewrite_instr] — so the wait releases and reacquires it natively. *)
  let release, reacquire =
    match style with
    | Futex ->
        ( B.unlock (B.gi m (B.r "mi")), B.lock (B.gi m (B.r "mi")) )
    | Compact | Realistic ->
        ( B.call (unlock_fn m) [ B.r "mi" ], B.call (lock_fn m) [ B.r "mi" ] )
  in
  B.func (wait_fn cv m) ~params:[ "cvi"; "mi" ]
    (B.blk "entry"
       [ B.load "s" (B.gi cv (B.r "cvi")); release ]
       (B.goto (spin_entry "w"))
    :: loop
    @ [ B.blk "wdone" [ reacquire ] B.ret0 ])

let signal_helper cv =
  B.func (signal_fn cv) ~params:[ "idx" ]
    [
      B.blk "entry" [ B.rmw Rmw_add "old" (B.gi cv (B.r "idx")) (B.imm 1) ] B.ret0;
    ]

(* Barrier: atomic arrival counter in the barrier word itself, plus a
   generation word the non-last arrivals spin on. *)
let barinit_helper b =
  B.func (barinit_fn b) ~params:[ "idx"; "n" ]
    [
      B.blk "entry"
        [
          B.store (B.gi b (B.r "idx")) (B.imm 0);
          B.store (B.gi (gen_global b) (B.r "idx")) (B.imm 0);
          B.store (B.gi (total_global b) (B.r "idx")) (B.r "n");
        ]
        B.ret0;
    ]

let barwait_helper style b =
  let gen = gen_global b in
  let cond_call d = B.call ~ret:d (chk_fn "ne" gen) [ B.r "idx"; B.r "g" ] in
  let inline_cond d =
    [ B.load "v" (B.gi gen (B.r "idx")); B.cmp Ne d (B.r "v") (B.r "g") ]
  in
  let loop =
    spin_blocks style ~tag:"b" ~cond_call ~inline_cond ~exit_lbl:"bdone"
  in
  B.func (barwait_fn b) ~params:[ "idx" ]
    ([
       B.blk "entry"
         [
           B.load "g" (B.gi gen (B.r "idx"));
           B.rmw Rmw_add "old" (B.gi b (B.r "idx")) (B.imm 1);
           B.load "tot" (B.gi (total_global b) (B.r "idx"));
           B.addi "n1" (B.r "old") (B.imm 1);
           B.cmp Eq "lastp" (B.r "n1") (B.r "tot");
         ]
         (B.br (B.r "lastp") "last" (spin_entry "b"));
       B.blk "last"
         [
           B.store (B.gi b (B.r "idx")) (B.imm 0);
           B.rmw Rmw_add "gold" (B.gi gen (B.r "idx")) (B.imm 1);
         ]
         (B.goto "bdone");
     ]
    @ loop
    @ [ B.blk "bdone" [] B.ret0 ])

let seminit_helper s =
  B.func (seminit_fn s) ~params:[ "idx"; "n" ]
    [ B.blk "entry" [ B.store (B.gi s (B.r "idx")) (B.r "n") ] B.ret0 ]

let sempost_helper s =
  B.func (sempost_fn s) ~params:[ "idx" ]
    [
      B.blk "entry" [ B.rmw Rmw_add "old" (B.gi s (B.r "idx")) (B.imm 1) ] B.ret0;
    ]

let semwait_helper style s =
  let cond_call d = B.call ~ret:d (chk_fn "gt0" s) [ B.r "idx" ] in
  let inline_cond d =
    [ B.load "v" (B.gi s (B.r "idx")); B.cmp Gt d (B.r "v") (B.imm 0) ]
  in
  let loop = spin_blocks style ~tag:"s" ~cond_call ~inline_cond ~exit_lbl:"try" in
  B.func (semwait_fn s) ~params:[ "idx" ]
    ([
       B.blk "entry" [] (B.goto "outer");
       B.blk "outer" [] (B.goto (spin_entry "s"));
     ]
    @ loop
    @ [
        B.blk "try"
          [
            B.load "cur" (B.gi s (B.r "idx"));
            B.cmp Gt "pos" (B.r "cur") (B.imm 0);
          ]
          (B.br (B.r "pos") "try2" "outer");
        B.blk "try2"
          [
            B.subi "nv" (B.r "cur") (B.imm 1);
            B.cas "c" (B.gi s (B.r "idx")) (B.r "cur") (B.r "nv");
          ]
          (B.br (B.r "c") "done" "outer");
        B.blk "done" [] B.ret0;
      ])

let join_helper style =
  let base = thread_done_global in
  let cond_call d = B.call ~ret:d (chk_fn "ne" base) [ B.r "t"; B.imm 0 ] in
  let inline_cond d =
    [ B.load "v" (B.gi base (B.r "t")); B.cmp Ne d (B.r "v") (B.imm 0) ]
  in
  let loop =
    spin_blocks style ~tag:"j" ~cond_call ~inline_cond ~exit_lbl:"jdone"
  in
  B.func join_fn ~params:[ "t" ]
    ((B.blk "entry" [] (B.goto (spin_entry "j")) :: loop)
    @ [ B.blk "jdone" [] B.ret0 ])

(* Lowering driver: rewrite instructions, collecting the helper functions
   and auxiliary globals each rewrite needs. *)

type state = {
  style : style;
  helpers : (string, func) Hashtbl.t;
  aux_globals : (string, global) Hashtbl.t;
  prog : program;
}

let need st f =
  let fn = f () in
  if not (Hashtbl.mem st.helpers fn.fname) then Hashtbl.add st.helpers fn.fname fn;
  fn.fname

let need_chk st op base =
  ignore (need st (fun () -> chk_helper op base))

let global_size st base =
  match List.find_opt (fun gl -> gl.gname = base) st.prog.globals with
  | Some gl -> gl.size
  | None -> 1

let need_aux st base =
  List.iter
    (fun name ->
      if not (Hashtbl.mem st.aux_globals name) then
        Hashtbl.add st.aux_globals name
          { gname = name; size = global_size st base; ginit = 0 })
    [ gen_global base; total_global base ]

let need_lock st m =
  if st.style <> Compact then need_chk st Eq m;
  ignore (need st (fun () -> unlock_helper m));
  need st (fun () -> lock_helper st.style m)

let need_unlock st m =
  ignore (need_lock st m);
  unlock_fn m

let rewrite_instr st i =
  match i with
  | Lock _ when st.style = Futex -> i
  | Unlock _ when st.style = Futex -> i
  | Lock a -> Call (None, need_lock st a.base, [ a.index ])
  | Unlock a -> Call (None, need_unlock st a.base, [ a.index ])
  | Cond_wait (cv, m) ->
      if st.style <> Futex then ignore (need_lock st m.base);
      if st.style <> Compact then need_chk st Ne cv.base;
      let fn = need st (fun () -> wait_helper st.style cv.base m.base) in
      Call (None, fn, [ cv.index; m.index ])
  | Cond_signal cv | Cond_broadcast cv ->
      Call (None, need st (fun () -> signal_helper cv.base), [ cv.index ])
  | Barrier_init (b, n) ->
      need_aux st b.base;
      Call (None, need st (fun () -> barinit_helper b.base), [ b.index; n ])
  | Barrier_wait b ->
      need_aux st b.base;
      if st.style <> Compact then need_chk st Ne (gen_global b.base);
      Call (None, need st (fun () -> barwait_helper st.style b.base), [ b.index ])
  | Sem_init (s, n) ->
      Call (None, need st (fun () -> seminit_helper s.base), [ s.index; n ])
  | Sem_post s ->
      Call (None, need st (fun () -> sempost_helper s.base), [ s.index ])
  | Sem_wait s ->
      if st.style <> Compact then need_chk st Gt s.base;
      Call (None, need st (fun () -> semwait_helper st.style s.base), [ s.index ])
  | Join t ->
      (* Join is recoverable in every style: a thread's departure is a
         kernel-level event with a simple fast-path check, and the paper's
         nolib experiments clearly retain join ordering. *)
      let style = match st.style with Compact -> Compact | _ -> Realistic in
      if style <> Compact then need_chk st Ne thread_done_global;
      Call (None, need st (fun () -> join_helper style), [ t ])
  | Mov _ | Binop _ | Cmp _ | Load _ | Store _ | Cas _ | Rmw _ | Fence
  | Call _ | Call_indirect _ | Spawn _ | Yield | Check _ | Nop ->
      i

let lower ?(style = Realistic) prog =
  let st =
    { style; helpers = Hashtbl.create 16; aux_globals = Hashtbl.create 8; prog }
  in
  let funcs =
    List.map
      (fun f ->
        {
          f with
          blocks =
            List.map
              (fun b -> { b with ins = List.map (rewrite_instr st) b.ins })
              f.blocks;
        })
      prog.funcs
  in
  let helpers = Hashtbl.fold (fun _ f acc -> f :: acc) st.helpers [] in
  let helpers = List.sort (fun a b -> String.compare a.fname b.fname) helpers in
  let aux = Hashtbl.fold (fun _ g acc -> g :: acc) st.aux_globals [] in
  let aux = List.sort (fun a b -> String.compare a.gname b.gname) aux in
  { prog with funcs = funcs @ helpers; globals = prog.globals @ aux }
