open Types

type t = {
  names : string array;
  sizes : int array;
  declared : bool array;
  ids : (string, int) Hashtbl.t;
  total_cells : int;
}

let of_program (p : program) =
  let ids = Hashtbl.create 64 in
  let rev = ref [] and n = ref 0 in
  let add name size declared =
    match Hashtbl.find_opt ids name with
    | Some _ -> ()
    | None ->
        Hashtbl.replace ids name !n;
        rev := (name, size, declared) :: !rev;
        incr n
  in
  List.iter (fun gl -> add gl.gname gl.size true) p.globals;
  (* The machine emits a [__thread_done] write for every thread exit even
     when the program never declared the global (it only stores to it when
     declared); interning it unconditionally keeps every machine-produced
     event id-resolvable. *)
  add thread_done_global max_threads false;
  let entries = Array.of_list (List.rev !rev) in
  let names = Array.map (fun (nm, _, _) -> nm) entries in
  let sizes = Array.map (fun (_, s, _) -> max 0 s) entries in
  let declared = Array.map (fun (_, _, d) -> d) entries in
  (* __thread_done cells index up to [max_threads - 1] regardless of the
     declared size, so its interned extent covers both. *)
  (* Duplicate declarations: the machine's last declaration wins for the
     row, so take the max extent as a safe sizing bound for shadow rows. *)
  List.iter
    (fun gl ->
      match Hashtbl.find_opt ids gl.gname with
      | Some i -> sizes.(i) <- max sizes.(i) (max 0 gl.size)
      | None -> ())
    p.globals;
  (match Hashtbl.find_opt ids thread_done_global with
  | Some id -> sizes.(id) <- max sizes.(id) max_threads
  | None -> ());
  let total_cells = Array.fold_left ( + ) 0 sizes in
  { names; sizes; declared; ids; total_cells }

let id t name = match Hashtbl.find_opt t.ids name with Some i -> i | None -> -1
let name t i = t.names.(i)
let size t i = t.sizes.(i)
let declared t i = t.declared.(i)
let n_bases t = Array.length t.names
let total_cells t = t.total_cells
