type t = int array
(* Invariant: no trailing zero components (so [bottom] is [||] and
   structural equality coincides with clock equality). *)

let bottom = [||]

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let get c t = if t < Array.length c then c.(t) else 0

let set c t v =
  let n = max (Array.length c) (t + 1) in
  let a = Array.make n 0 in
  Array.blit c 0 a 0 (Array.length c);
  a.(t) <- v;
  trim a

let inc c t = set c t (get c t + 1)

let join a b =
  if Array.length a < Array.length b then
    Array.mapi (fun i bv -> max bv (get a i)) b
  else Array.mapi (fun i av -> max av (get b i)) a

let leq a b =
  let rec go i = i >= Array.length a || (a.(i) <= get b i && go (i + 1)) in
  go 0

let is_bottom c = Array.length c = 0

let of_list l = trim (Array.of_list l)
let to_list c = Array.to_list c
let equal a b = a = b

let pp ppf c =
  Format.fprintf ppf "<%s>"
    (String.concat ","
       (List.map string_of_int (Array.to_list c)))

let size_words c = 2 + Array.length c

(* ------------------------------------------------------------------ *)
(* Mutable clocks: the per-thread hot-path representation.             *)

type m = int array
(* Fixed capacity, mutated in place; trailing zeros are allowed here —
   [snapshot] re-establishes the immutable invariant on the way out. *)

let make_mut capacity = Array.make capacity 0

let mget (m : m) t = if t < Array.length m then m.(t) else 0

let mtick (m : m) t = m.(t) <- m.(t) + 1

let mjoin (m : m) (c : t) =
  let n = min (Array.length c) (Array.length m) in
  for i = 0 to n - 1 do
    if c.(i) > m.(i) then m.(i) <- c.(i)
  done

let mjoin_changed (m : m) (c : t) =
  let n = min (Array.length c) (Array.length m) in
  let changed = ref false in
  for i = 0 to n - 1 do
    if c.(i) > m.(i) then begin
      m.(i) <- c.(i);
      changed := true
    end
  done;
  !changed

let mjoin_m (dst : m) (src : m) =
  for i = 0 to Array.length src - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let m_is_bottom (m : m) =
  let rec go i = i >= Array.length m || (m.(i) = 0 && go (i + 1)) in
  go 0

let snapshot (m : m) =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  Array.sub m 0 !n

let of_mut = snapshot
let msize_words (m : m) = 1 + Array.length m
