(* Two representations, one lattice.  Immutable clocks are trimmed
   integer arrays as before, but each carries a provenance epoch: the
   thread whose mutable clock it was snapshotted from and that clock's
   version counter at snapshot time.  Mutable clocks count every state
   change in [ver] and remember, per owning thread, the highest snapshot
   version they have fully absorbed ([seen]).  A join of a snapshot the
   reader has already absorbed — the dominant shape under ad-hoc
   synchronization, where a spin loop re-reads the same release snapshot
   thousands of times — is then a single array read instead of a walk
   over every component.

   Soundness of the skip rests on monotonicity, not on component
   values: a thread's mutable clock only ever grows (ticks and max
   joins), and [ver] bumps on every change, so snapshots of one thread
   are totally ordered by version and [ver] uniquely identifies a
   snapshot's contents.  Component values would not suffice — the
   engine stores snapshots without ticking on some paths, so two
   distinct snapshots of a thread can share the thread's own component
   while differing elsewhere. *)

type t = { v : int array; owner : int; over : int }
(* [v]: no trailing zero components (so [bottom.v] is [||] and equality
   of clocks is equality of [v]).  [owner]: the thread whose mutable
   clock this snapshot was taken from, or -1 for derived clocks (joins,
   [inc]/[set]/[of_list] results).  [over]: the owner's [ver] at
   snapshot time; meaningless when [owner < 0]. *)

let bottom = { v = [||]; owner = -1; over = 0 }
let derived v = if Array.length v = 0 then bottom else { v; owner = -1; over = 0 }

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let vget (v : int array) t = if t < Array.length v then v.(t) else 0
let get c t = vget c.v t

let set c t value =
  let n = max (Array.length c.v) (t + 1) in
  let a = Array.make n 0 in
  Array.blit c.v 0 a 0 (Array.length c.v);
  a.(t) <- value;
  derived (trim a)

let inc c t = set c t (get c t + 1)
let is_bottom c = Array.length c.v = 0

let join a b =
  (* Preserving the non-bottom side (not just its contents) keeps the
     provenance epoch alive through the accumulator tables' common case
     of a single releaser, so waiters still get the O(1) skip. *)
  if is_bottom a then b
  else if is_bottom b then a
  else
    derived
      (if Array.length a.v < Array.length b.v then
         Array.mapi (fun i bv -> max bv (vget a.v i)) b.v
       else Array.mapi (fun i av -> max av (vget b.v i)) a.v)

let leq a b =
  (* Snapshots of one thread are totally ordered by version. *)
  (a.owner >= 0 && a.owner = b.owner && a.over <= b.over)
  ||
  let av = a.v and bv = b.v in
  let rec go i = i >= Array.length av || (av.(i) <= vget bv i && go (i + 1)) in
  go 0

let of_list l = derived (trim (Array.of_list l))
let to_list c = Array.to_list c.v
let equal a b = a.v = b.v

let pp ppf c =
  Format.fprintf ppf "<%s>"
    (String.concat "," (List.map string_of_int (Array.to_list c.v)))

let size_words c = 5 + Array.length c.v
(* record header + three fields + array header + components *)

(* ------------------------------------------------------------------ *)
(* Mutable clocks: the per-thread hot-path representation.             *)

type m = {
  a : int array;
      (* fixed capacity, mutated in place; components at or above
         capacity are fixed at 0 *)
  mutable n : int;
      (* live prefix: [a.(i) = 0] for [i >= n], so snapshots and
         bottom tests scan O(live threads), not O(capacity) *)
  mowner : int;  (* the thread this clock belongs to, or -1 *)
  mutable ver : int;  (* bumped on every state change *)
  seen : int array;
      (* [seen.(u)]: highest [over] of an owner-[u] snapshot fully
         absorbed into this clock, or -1.  Never ahead of the truth:
         an entry is written only after a complete walk of the
         snapshot (or for our own past snapshots, which monotonicity
         covers for free). *)
}

let make_mut ?(owner = -1) capacity =
  {
    a = Array.make capacity 0;
    n = 0;
    mowner = owner;
    ver = 0;
    seen = Array.make capacity (-1);
  }

let mget (m : m) t = if t < Array.length m.a then m.a.(t) else 0

let mtick (m : m) t =
  m.a.(t) <- m.a.(t) + 1;
  if t >= m.n then m.n <- t + 1;
  m.ver <- m.ver + 1

(* The O(1) fast path: a snapshot of our own clock is always dominated
   (our clock only grows), and a snapshot we have already absorbed at
   this or a later version cannot add anything either. *)
let absorbed (m : m) (c : t) =
  c.owner >= 0
  && (c.owner = m.mowner
     || (c.owner < Array.length m.seen && m.seen.(c.owner) >= c.over))

let record_absorbed (m : m) (c : t) =
  if c.owner >= 0 && c.owner < Array.length m.seen
     && m.seen.(c.owner) < c.over
  then m.seen.(c.owner) <- c.over

let mjoin_changed (m : m) (c : t) =
  if absorbed m c then false
  else begin
    let lc = Array.length c.v in
    let k = min lc (Array.length m.a) in
    let changed = ref false in
    for i = 0 to k - 1 do
      if c.v.(i) > m.a.(i) then begin
        m.a.(i) <- c.v.(i);
        if i >= m.n then m.n <- i + 1;
        changed := true
      end
    done;
    (* Only a complete walk absorbs the snapshot. *)
    if k = lc then record_absorbed m c;
    if !changed then m.ver <- m.ver + 1;
    !changed
  end

let mjoin (m : m) (c : t) = ignore (mjoin_changed m c)

let mjoin_m (dst : m) (src : m) =
  let k = min src.n (Array.length dst.a) in
  let changed = ref false in
  for i = 0 to k - 1 do
    if src.a.(i) > dst.a.(i) then begin
      dst.a.(i) <- src.a.(i);
      if i >= dst.n then dst.n <- i + 1;
      changed := true
    end
  done;
  if k = src.n then begin
    (* dst now dominates src's current state, hence every snapshot src
       has absorbed — and every snapshot src itself has produced. *)
    let lim = min (Array.length src.seen) (Array.length dst.seen) in
    for u = 0 to lim - 1 do
      if src.seen.(u) > dst.seen.(u) then dst.seen.(u) <- src.seen.(u)
    done;
    if src.mowner >= 0 && src.mowner < Array.length dst.seen
       && dst.seen.(src.mowner) < src.ver
    then dst.seen.(src.mowner) <- src.ver
  end;
  if !changed then dst.ver <- dst.ver + 1

let m_is_bottom (m : m) = m.n = 0
(* Components only grow, so [a.(n-1) > 0] whenever [n > 0]. *)

let snapshot (m : m) =
  let n = ref m.n in
  while !n > 0 && m.a.(!n - 1) = 0 do
    decr n
  done;
  { v = Array.sub m.a 0 !n; owner = m.mowner; over = m.ver }

let of_mut = snapshot

let msize_words (m : m) = 6 + 2 * (1 + Array.length m.a)
(* record header + five fields, plus the component and seen arrays *)
