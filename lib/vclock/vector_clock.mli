(** Vector clocks for happens-before tracking.

    Values are immutable; [join] and [inc] return fresh clocks.  Thread ids
    are small non-negative integers (the machine caps them at
    [Tir.Types.max_threads]), so clocks are dense integer arrays trimmed to
    the highest non-zero component — compact enough to sit in every shadow
    cell, which is what the paper's memory-consumption figure measures.

    Snapshots additionally carry a {e provenance epoch} — the owning
    thread and a version counter of its mutable clock at snapshot time —
    which lets a mutable clock answer "have I already absorbed this
    snapshot?" in O(1) instead of walking every component.  The epoch is
    invisible to the lattice: [equal], [leq], [join] and friends depend
    only on the components, so the two representations still compare
    identically through {!snapshot}. *)

type t

val bottom : t
(** The all-zero clock. *)

val get : t -> int -> int
val inc : t -> int -> t
(** [inc c t] bumps component [t] by one. *)

val set : t -> int -> int -> t

val join : t -> t -> t
(** Component-wise maximum. *)

val leq : t -> t -> bool
(** Pointwise [<=]; the happens-before order on clocks. *)

val is_bottom : t -> bool

val of_list : int list -> t
val to_list : t -> int list
(** Trailing zeros trimmed. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val size_words : t -> int
(** Approximate heap footprint in words, for the memory experiment. *)

(** {1 Mutable clocks}

    The detector's per-event fast path: a fixed-capacity clock mutated in
    place, so [tick]/[join] on the per-thread clocks allocate nothing.
    Stored metadata (release snapshots, spin-edge clocks) goes through
    {!snapshot}, which re-establishes the trimmed immutable form — the two
    representations compare identically through it. *)

type m

val make_mut : ?owner:int -> int -> m
(** [make_mut ~owner capacity] is an all-zero mutable clock; components
    at or above [capacity] are fixed at 0.  [owner] is the thread this
    clock belongs to (default [-1], unowned): snapshots of an owned
    clock carry its epoch, and joining a snapshot the clock has already
    absorbed — including any earlier snapshot of itself — is O(1). *)

val mget : m -> int -> int
val mtick : m -> int -> unit
(** Bump one component in place. *)

val mjoin : m -> t -> unit
(** Component-wise maximum of an immutable clock into a mutable one. *)

val mjoin_changed : m -> t -> bool
(** Like {!mjoin}, reporting whether any component actually grew — a
    no-op join leaves cached snapshots of the clock valid. *)

val mjoin_m : m -> m -> unit
(** [mjoin_m dst src]: join [src] into [dst], both mutable. *)

val m_is_bottom : m -> bool

val snapshot : m -> t
(** Immutable trimmed copy; the only way mutable state may be stored. *)

val of_mut : m -> t
(** Alias of {!snapshot}. *)

val msize_words : m -> int
(** Heap footprint of a mutable clock (full capacity, not trimmed). *)
