(** Event-trace collection helpers.

    Used by tests (determinism: same seed ⇒ same trace hash), by the CLI's
    trace dump, and by detectors that want to analyze a recorded run
    offline instead of online. *)

type t

val create : unit -> t

val observer : t -> Observer.t
(** Feed this to {!Machine.config}. *)

val events : t -> Event.t list
(** In emission order. *)

val length : t -> int

val hash : t -> int
(** Order-sensitive structural hash of the trace. *)

val pp : Format.formatter -> t -> unit
