type policy = Round_robin of int | Uniform | Chunked of int

type t = {
  policy : policy;
  rng : Arde_util.Prng.t;
  mutable current : int;
  mutable burst : int; (* remaining instructions before a forced re-pick *)
}

let create policy ~seed =
  { policy; rng = Arde_util.Prng.create seed; current = -1; burst = 0 }

let force_switch t = t.burst <- 0

let fresh_burst t mean = 1 + Arde_util.Prng.int t.rng (2 * mean)

(* The machine refills one [runnable] buffer per step and passes it here
   with its live length; nothing below allocates, and the PRNG draw
   sequence is identical to the historical list-based implementation
   (single-candidate steps never draw; [Uniform] draws once per step;
   [Chunked] draws a pick and a burst length only when the burst expires
   or the current thread blocked). *)

(* Both helpers recurse at top level rather than through an inner
   [let rec]: an inner recursive closure is heap-allocated per call on the
   non-flambda compiler, and these run once per multi-candidate step. *)
let rec mem buf n x i =
  i < n && (Array.unsafe_get buf i = x || mem buf n x (i + 1))

(* First element greater than [cur], else the first element — [runnable]
   is ascending. *)
let rec next_after buf n cur i =
  if i >= n then buf.(0)
  else if Array.unsafe_get buf i > cur then Array.unsafe_get buf i
  else next_after buf n cur (i + 1)

let pick t ~runnable ~n =
  if n <= 0 then invalid_arg "Sched.pick: no runnable thread"
  else if n = 1 then begin
    t.current <- runnable.(0);
    t.current
  end
  else
    match t.policy with
    | Round_robin quantum ->
        if t.burst > 0 && mem runnable n t.current 0 then begin
          t.burst <- t.burst - 1;
          t.current
        end
        else begin
          t.current <- next_after runnable n t.current 0;
          t.burst <- quantum - 1;
          t.current
        end
    | Uniform ->
        t.current <- runnable.(Arde_util.Prng.int t.rng n);
        t.current
    | Chunked mean ->
        if t.burst > 0 && mem runnable n t.current 0 then begin
          t.burst <- t.burst - 1;
          t.current
        end
        else begin
          t.current <- runnable.(Arde_util.Prng.int t.rng n);
          t.burst <- fresh_burst t mean;
          t.current
        end

let policy_name = function
  | Round_robin q -> Printf.sprintf "rr:%d" q
  | Uniform -> "uniform"
  | Chunked n -> Printf.sprintf "chunked:%d" n

let parse_policy s =
  let int_suffix prefix =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      int_of_string_opt (String.sub s plen (String.length s - plen))
    else None
  in
  match s with
  | "uniform" -> Ok Uniform
  | _ -> (
      match (int_suffix "rr:", int_suffix "chunked:") with
      | Some q, _ when q > 0 -> Ok (Round_robin q)
      | _, Some n when n > 0 -> Ok (Chunked n)
      | _ ->
          Error
            (Printf.sprintf "unknown policy %S (use rr:N, uniform or chunked:N)"
               s))
