(* The interpreting machine, compiled-representation edition.

   The semantics are pinned by trace identity: for every (program, policy,
   seed, fuel, perturbation) this machine must reproduce the event
   sequence of the frozen {!Machine_ref} bit for bit — the golden fixtures
   in [test/fixtures/machine_traces.txt] are the contract, and
   [test_machine_diff] re-checks them after every change here.

   What changed relative to the reference is *where work happens*, not
   what work happens.  [compile] now pre-resolves everything the validator
   already guarantees: registers become dense integer slots into a
   per-frame [int array] (names survive only for fault messages), direct
   call and spawn targets become [cfunc] pointers, branch labels become
   block indices, and every address operand carries its interned base id.
   Globals live in one [int array] per base; mutexes, condition variables,
   barriers and semaphores are addressed by flat cell number
   (base offset + index) into per-kind tables.  Source locations are
   materialized once per block at compile time and shared by every event.

   The payoff is a steady-state step that allocates nothing: no
   per-access string hashing, no tuple keys, no [option] or list churn —
   and when the observer is the default discarding one, no event
   construction either.  [machine_bench] asserts the zero-allocation
   property with [Gc] counters and gates the speedup against the frozen
   reference. *)

open Arde_tir.Types
module Instrument = Arde_cfg.Instrument

type config = {
  policy : Sched.policy;
  seed : int;
  fuel : int;
  instrument : Instrument.t option;
  spurious_wakeups : bool;
  observer : Observer.t;
}

let default_config =
  {
    policy = Sched.Chunked 6;
    seed = 1;
    fuel = 2_000_000;
    instrument = None;
    spurious_wakeups = false;
    observer = Observer.none;
  }

type spin_site = {
  sp_tid : int;
  sp_loop : int;
  sp_loc : loc;
  sp_bases : string list;
}

type outcome =
  | Finished
  | Deadlock of int list
  | Fuel_exhausted
  | Livelock of spin_site list
  | Fault of { ftid : int; floc : loc; msg : string }

type result = {
  outcome : outcome;
  steps : int;
  threads_spawned : int;
  check_failures : (loc * string) list;
  memory : (string, int array) Hashtbl.t;
  thread_steps : int array; (* instructions executed per thread *)
  context_switches : int;
}

exception Fault_exn of loc * string
exception Internal_violation of string

(* ------------------------------------------------------------------ *)
(* Compiled representation                                            *)

(* Register operands are slot numbers into the frame's register file;
   addresses carry their interned base id so the hot path never touches a
   string.  [ca_base] is kept only for fault messages and event fields. *)
type coperand = Cimm of int | Creg of int

type caddr = { ca_base : string; ca_id : int; ca_index : coperand }

type cinstr =
  | CMov of int * coperand
  | CBinop of int * binop * coperand * coperand
  | CCmp of int * cmpop * coperand * coperand
  | CLoad of int * caddr
  | CStore of caddr * coperand
  | CCas of int * caddr * coperand * coperand
  | CRmw of int * rmw_op * caddr * coperand
  | CNop (* Fence and Nop: both just advance *)
  | CYield
  | CCheck of coperand * string
  | CCall of cfunc * coperand array * int (* callee, args, ret slot or -1 *)
  | CCall_indirect of int * coperand * coperand array
  | CSpawn of int * cfunc * coperand array
  | CJoin of coperand
  | CLock of caddr
  | CUnlock of caddr
  | CCond_wait of caddr * caddr
  | CCond_signal of caddr
  | CCond_broadcast of caddr
  | CBarrier_init of caddr * coperand
  | CBarrier_wait of caddr
  | CSem_init of caddr * coperand
  | CSem_post of caddr
  | CSem_wait of caddr

and cterm =
  | CGoto of int
  | CBr of coperand * int * int
  | CRet of coperand option
  | CExit

and cblock = {
  clbl : label;
  cins : cinstr array;
  cterm : cterm;
  clocs : loc array;
      (* length [Array.length cins + 1]; the last entry (lidx = -1) is the
         terminator's location.  Shared by every event at that site. *)
}

and cfunc = {
  cfid : int; (* index into [compiled.cfuncs] *)
  cfname : string;
  cnparams : int; (* parameters occupy slots 0 .. cnparams-1 *)
  cnregs : int;
  crnames : string array; (* slot -> source register name, for faults *)
  mutable cblocks : cblock array; (* filled in compile pass 2 *)
}

(* Per-instrumentation spin cache: every query the reference machine made
   through {!Instrument}'s string-keyed tables, precomputed per (function,
   block[, pc]) as int arrays so the hot path neither hashes strings nor
   allocates an [option].  Immutable once built, hence freely shared
   across the domains of a parallel multi-seed run. *)
type icache = {
  ic_header : int array array; (* fid -> blk -> loop id, or -1 *)
  ic_inloop : int array array array; (* fid -> blk -> ids of containing loops *)
  ic_tags : int array array array array;
      (* fid -> blk -> pc -> condition-load loop ids *)
}

type compiled = {
  prog : program;
  cfuncs : cfunc array; (* in declaration order; cfid = index *)
  centry : cfunc;
  cftable : cfunc array; (* indirect-call table, pre-resolved *)
  cintern : Arde_tir.Intern.t;
  td_id : int; (* interned id of [thread_done_global] *)
  td_declared : bool;
  coffsets : int array; (* base id -> first flat cell number *)
  ctotal : int; (* total flat cells across all bases *)
  ccell_base : string array; (* flat cell -> interned base name *)
  ccell_idx : int array; (* flat cell -> index within the base *)
  cicache : (Instrument.t * icache) list Atomic.t;
      (* icaches built by previous runs, keyed by physical identity of the
         instrumentation (compile once, run many seeds) *)
}

let compile prog =
  Arde_tir.Validate.check_exn prog;
  let cintern = Arde_tir.Intern.of_program prog in
  (* Pass 1: number every register of every function (parameters first,
     then first textual occurrence, destination before operands) and
     create the function shells so calls can point straight at their
     callee. *)
  let by_name = Hashtbl.create 16 in
  let shells =
    List.mapi
      (fun fid (f : func) ->
        let slots = Hashtbl.create 16 in
        let count = ref 0 in
        let names = ref [] in
        let slot r =
          if not (Hashtbl.mem slots r) then begin
            Hashtbl.replace slots r !count;
            incr count;
            names := r :: !names
          end
        in
        List.iter slot f.params;
        let op = function Imm _ -> () | Reg r -> slot r in
        let ad (a : addr) = op a.index in
        let visit_ins = function
          | Mov (d, o) ->
              slot d;
              op o
          | Binop (d, _, a, b) | Cmp (d, _, a, b) ->
              slot d;
              op a;
              op b
          | Load (d, a) ->
              slot d;
              ad a
          | Store (a, o) ->
              ad a;
              op o
          | Cas (d, a, e, n) ->
              slot d;
              ad a;
              op e;
              op n
          | Rmw (d, _, a, o) ->
              slot d;
              ad a;
              op o
          | Fence | Nop | Yield -> ()
          | Check (o, _) -> op o
          | Call (ret, _, args) ->
              Option.iter slot ret;
              List.iter op args
          | Call_indirect (ret, tgt, args) ->
              Option.iter slot ret;
              op tgt;
              List.iter op args
          | Spawn (d, _, args) ->
              slot d;
              List.iter op args
          | Join o -> op o
          | Lock a
          | Unlock a
          | Cond_signal a
          | Cond_broadcast a
          | Barrier_wait a
          | Sem_post a
          | Sem_wait a ->
              ad a
          | Cond_wait (a, b) ->
              ad a;
              ad b
          | Barrier_init (a, n) | Sem_init (a, n) ->
              ad a;
              op n
        in
        let visit_term = function
          | Goto _ | Exit -> ()
          | Br (o, _, _) -> op o
          | Ret o -> Option.iter op o
        in
        List.iter
          (fun (b : block) ->
            List.iter visit_ins b.ins;
            visit_term b.term)
          f.blocks;
        let crnames = Array.make !count "" in
        List.iteri (fun i r -> crnames.(!count - 1 - i) <- r) !names;
        let shell =
          {
            cfid = fid;
            cfname = f.fname;
            cnparams = List.length f.params;
            cnregs = !count;
            crnames;
            cblocks = [||];
          }
        in
        Hashtbl.replace by_name f.fname shell;
        (shell, slots, f))
      prog.funcs
  in
  let fn_of name = Hashtbl.find by_name name in
  (* Pass 2: translate blocks, resolving labels to block indices, bases to
     interned ids and callees to shells.  The validator has already
     rejected unknown labels, unknown or arity-mismatched direct
     callees/spawnees and undeclared globals, so those runtime faults
     disappear here. *)
  List.iter
    (fun (shell, slots, (f : func)) ->
      let blocks = Array.of_list f.blocks in
      let lbl_index = Hashtbl.create (Array.length blocks) in
      Array.iteri (fun i (b : block) -> Hashtbl.replace lbl_index b.lbl i) blocks;
      let slot r = Hashtbl.find slots r in
      let cop = function Imm n -> Cimm n | Reg r -> Creg (slot r) in
      let ca (a : addr) =
        {
          ca_base = a.base;
          ca_id = Arde_tir.Intern.id cintern a.base;
          ca_index = cop a.index;
        }
      in
      let ret_slot = function None -> -1 | Some r -> slot r in
      let args_of args = Array.of_list (List.map cop args) in
      let tr = function
        | Mov (d, o) -> CMov (slot d, cop o)
        | Binop (d, op, a, b) -> CBinop (slot d, op, cop a, cop b)
        | Cmp (d, op, a, b) -> CCmp (slot d, op, cop a, cop b)
        | Load (d, a) -> CLoad (slot d, ca a)
        | Store (a, o) -> CStore (ca a, cop o)
        | Cas (d, a, e, n) -> CCas (slot d, ca a, cop e, cop n)
        | Rmw (d, op, a, o) -> CRmw (slot d, op, ca a, cop o)
        | Fence | Nop -> CNop
        | Yield -> CYield
        | Check (o, msg) -> CCheck (cop o, msg)
        | Call (ret, name, args) -> CCall (fn_of name, args_of args, ret_slot ret)
        | Call_indirect (ret, tgt, args) ->
            CCall_indirect (ret_slot ret, cop tgt, args_of args)
        | Spawn (d, name, args) -> CSpawn (slot d, fn_of name, args_of args)
        | Join o -> CJoin (cop o)
        | Lock a -> CLock (ca a)
        | Unlock a -> CUnlock (ca a)
        | Cond_wait (a, b) -> CCond_wait (ca a, ca b)
        | Cond_signal a -> CCond_signal (ca a)
        | Cond_broadcast a -> CCond_broadcast (ca a)
        | Barrier_init (a, n) -> CBarrier_init (ca a, cop n)
        | Barrier_wait a -> CBarrier_wait (ca a)
        | Sem_init (a, n) -> CSem_init (ca a, cop n)
        | Sem_post a -> CSem_post (ca a)
        | Sem_wait a -> CSem_wait (ca a)
      in
      let trt = function
        | Goto l -> CGoto (Hashtbl.find lbl_index l)
        | Br (o, a, b) ->
            CBr (cop o, Hashtbl.find lbl_index a, Hashtbl.find lbl_index b)
        | Ret o -> CRet (Option.map cop o)
        | Exit -> CExit
      in
      shell.cblocks <-
        Array.map
          (fun (b : block) ->
            let cins = Array.of_list (List.map tr b.ins) in
            let n = Array.length cins in
            let clocs =
              Array.init (n + 1) (fun i ->
                  { lfunc = f.fname; lblk = b.lbl; lidx = (if i < n then i else -1) })
            in
            { clbl = b.lbl; cins; cterm = trt b.term; clocs })
          blocks)
    shells;
  let cfuncs = Array.of_list (List.map (fun (s, _, _) -> s) shells) in
  (* Flat cell numbering for synchronization state: every (base, index)
     pair gets one cell.  Offsets use the interned extent, which is the
     maximum over duplicate declarations, so any index that survives the
     bounds check (against the live row) fits. *)
  let nb = Arde_tir.Intern.n_bases cintern in
  let coffsets = Array.make nb 0 in
  let total = ref 0 in
  for id = 0 to nb - 1 do
    coffsets.(id) <- !total;
    total := !total + Arde_tir.Intern.size cintern id
  done;
  let ctotal = !total in
  let ccell_base = Array.make ctotal "" in
  let ccell_idx = Array.make ctotal 0 in
  for id = 0 to nb - 1 do
    let name = Arde_tir.Intern.name cintern id in
    let off = coffsets.(id) in
    for k = 0 to Arde_tir.Intern.size cintern id - 1 do
      ccell_base.(off + k) <- name;
      ccell_idx.(off + k) <- k
    done
  done;
  let td_id = Arde_tir.Intern.id cintern thread_done_global in
  {
    prog;
    cfuncs;
    centry = fn_of prog.entry;
    cftable = Array.of_list (List.map fn_of prog.func_table);
    cintern;
    td_id;
    td_declared = Arde_tir.Intern.declared cintern td_id;
    coffsets;
    ctotal;
    ccell_base;
    ccell_idx;
    cicache = Atomic.make [];
  }

let intern (c : compiled) = c.cintern

(* ------------------------------------------------------------------ *)
(* Machine state                                                      *)

type frame = {
  ffn : cfunc;
  mutable fblk : int; (* block index *)
  mutable fpc : int; (* instruction index within the block *)
  fregs : int array; (* register file, slot-indexed *)
  fdef : Bytes.t; (* '\000' = slot not yet assigned *)
  fret : int; (* caller slot receiving our return value, or -1 *)
  fdepth : int;
}

type spin_ctx = { sc_loop : int; sc_serial : int; sc_depth : int }

type status =
  | Runnable
  | Blocked_lock of int * int (* mutex cell, after-wait cv cell or -1 *)
  | Blocked_cv of int * int (* cv cell, mutex cell *)
  | Blocked_barrier of int
  | Blocked_sem of int
  | Blocked_join of int
  | Done

type thread = {
  tid : int;
  mutable frames : frame list; (* head is the active frame *)
  mutable status : status;
  mutable spins : spin_ctx list; (* head is the innermost active context *)
}

type mutex_state = { mutable owner : int (* -1 = free *); mwaiters : int Queue.t }
type cv_state = { cwaiters : (int * int) Queue.t (* waiter tid, mutex cell *) }

type barrier_state = {
  btotal : int;
  border : int array; (* arrival order; only the first [bn] are live *)
  mutable bn : int;
  mutable bgen : int;
}

type sem_state = { mutable count : int; swaiters : int Queue.t }

(* A broken machine invariant: never the interpreted program's fault, and
   never recoverable within the run.  Escapes [run] as a structured
   exception so harnesses can report "the detector crashed" instead of
   dying on a bare [Invalid_argument]. *)
let internal msg = raise (Internal_violation ("Machine: " ^ msg))

type machine = {
  cfg : config;
  cpl : compiled;
  quiet : bool; (* observer is the default discarding one: skip events *)
  mem : int array array; (* rows indexed by interned base id *)
  threads : thread option array;
  mutable n_threads : int;
  sched : Sched.t;
  rng : Arde_util.Prng.t; (* spurious wakeups only *)
  mutexes : mutex_state option array; (* all four tables: flat cell-indexed *)
  cvs : cv_state option array;
  barriers : barrier_state option array;
  sems : sem_state option array;
  cvs_named : (string * int, int) Hashtbl.t;
      (* (base, idx) -> cv cell, inserted on first touch.  Exists solely so
         [inject_spurious_wakeup] scans waiters in the exact iteration
         order of the reference machine's name-keyed table. *)
  runnable : int array; (* reusable scheduler buffer *)
  ic : icache option;
  mutable serial : int; (* spin-context serial counter *)
  mutable checks : (loc * string) list;
  mutable steps : int;
  thread_steps : int array;
  mutable last_tid : int;
  mutable context_switches : int;
}

let runtime_exit_loc tid = { lfunc = "<runtime>"; lblk = "thread-exit"; lidx = tid }
let emit m ev = m.cfg.observer ev

let thread m tid =
  match m.threads.(tid) with Some t -> t | None -> internal "dead thread id"

let cur_frame t =
  match t.frames with f :: _ -> f | [] -> internal "thread has no frame"

(* Pre-materialized location of the frame's current instruction (or
   terminator); shared, never allocated per step. *)
let iloc (f : frame) = f.ffn.cblocks.(f.fblk).clocs.(f.fpc)
let cur_loc t = iloc (cur_frame t)
let fault t msg = raise (Fault_exn (cur_loc t, msg))

let reg_value t (f : frame) s =
  if Bytes.unsafe_get f.fdef s = '\000' then
    fault t (Printf.sprintf "register %%%s read before assignment" f.ffn.crnames.(s))
  else Array.unsafe_get f.fregs s

let ceval t f = function Cimm n -> n | Creg s -> reg_value t f s

let set_slot (f : frame) s v =
  Array.unsafe_set f.fregs s v;
  Bytes.unsafe_set f.fdef s '\001'

(* Evaluate and bounds-check an address; returns the index within the
   base.  The base itself was resolved at compile time (unknown globals
   are statically impossible).  The bounds check is against the live row,
   whose extent can be smaller than the interned one under duplicate
   declarations — exactly like the reference. *)
let resolve_idx m t f (a : caddr) =
  let idx = ceval t f a.ca_index in
  let row = m.mem.(a.ca_id) in
  if idx < 0 || idx >= Array.length row then
    fault t
      (Printf.sprintf "index %d out of bounds for %s[%d]" idx a.ca_base
         (Array.length row))
  else idx

let cell_of m (a : caddr) idx = m.cpl.coffsets.(a.ca_id) + idx
let cell_base m cell = m.cpl.ccell_base.(cell)
let cell_idx m cell = m.cpl.ccell_idx.(cell)

let mutex_at m cell =
  match m.mutexes.(cell) with
  | Some s -> s
  | None ->
      let s = { owner = -1; mwaiters = Queue.create () } in
      m.mutexes.(cell) <- Some s;
      s

let cv_at m cell =
  match m.cvs.(cell) with
  | Some s -> s
  | None ->
      let s = { cwaiters = Queue.create () } in
      m.cvs.(cell) <- Some s;
      Hashtbl.replace m.cvs_named (cell_base m cell, cell_idx m cell) cell;
      s

let sem_at m cell =
  match m.sems.(cell) with
  | Some s -> s
  | None ->
      let s = { count = 0; swaiters = Queue.create () } in
      m.sems.(cell) <- Some s;
      s

(* ------------------------------------------------------------------ *)
(* Spin-context bookkeeping                                           *)

let no_ids : int array = [||]

let build_icache (cpl : compiled) inst =
  let loop_ids =
    List.map (fun (s : Instrument.spin) -> s.Instrument.s_id) (Instrument.spins inst)
  in
  let nf = Array.length cpl.cfuncs in
  let header = Array.make nf [||] in
  let inloop = Array.make nf [||] in
  let tags = Array.make nf [||] in
  Array.iteri
    (fun fid fn ->
      let nb = Array.length fn.cblocks in
      header.(fid) <- Array.make nb (-1);
      inloop.(fid) <- Array.make nb no_ids;
      tags.(fid) <- Array.make nb [||];
      Array.iteri
        (fun bi b ->
          (match Instrument.header_at inst ~fname:fn.cfname ~lbl:b.clbl with
          | Some id -> header.(fid).(bi) <- id
          | None -> ());
          (match
             List.filter
               (fun id -> Instrument.in_loop inst ~fname:fn.cfname ~lbl:b.clbl id)
               loop_ids
           with
          | [] -> ()
          | ids -> inloop.(fid).(bi) <- Array.of_list ids);
          tags.(fid).(bi) <-
            Array.init (Array.length b.cins) (fun pc ->
                match Instrument.marked_loops_at inst b.clocs.(pc) with
                | [] -> no_ids
                | ids -> Array.of_list ids))
        fn.cblocks)
    cpl.cfuncs;
  { ic_header = header; ic_inloop = inloop; ic_tags = tags }

(* The cache is built once per (compiled, instrumentation) pair and
   remembered on the compiled program — a multi-seed sweep pays for it
   once, not per run.  Lock-free: concurrent domains may race to build
   the same (immutable, identical) cache; the losing build is dropped. *)
let icache_for (cpl : compiled) inst =
  let rec find = function
    | (i, c) :: rest -> if i == inst then Some c else find rest
    | [] -> None
  in
  match find (Atomic.get cpl.cicache) with
  | Some c -> c
  | None ->
      let c = build_icache cpl inst in
      let rec publish () =
        let cur = Atomic.get cpl.cicache in
        match find cur with
        | Some c' -> c' (* another domain won the race *)
        | None ->
            if
              List.length cur < 8
              && not (Atomic.compare_and_set cpl.cicache cur ((inst, c) :: cur))
            then publish ()
            else c
      in
      publish ()

(* ------------------------------------------------------------------ *)
(* Spin-cache persistence.  The icache is a pure function of (compiled,
   instrumentation) — plain int arrays, no closures — so it can leave
   the process: export hands the arrays to a serializer, import installs
   arrays deserialized elsewhere after checking they match this
   program's shape.  A shape mismatch means the entry was built for a
   different program (or codec bug); the caller treats it as a miss. *)

type spin_cache = {
  sc_header : int array array;
  sc_inloop : int array array array;
  sc_tags : int array array array array;
}

let export_spin_cache (cpl : compiled) inst =
  let c = icache_for cpl inst in
  { sc_header = c.ic_header; sc_inloop = c.ic_inloop; sc_tags = c.ic_tags }

let import_spin_cache (cpl : compiled) inst sc =
  let nf = Array.length cpl.cfuncs in
  if
    Array.length sc.sc_header <> nf
    || Array.length sc.sc_inloop <> nf
    || Array.length sc.sc_tags <> nf
  then Error "spin cache: function count mismatch"
  else begin
    let ok = ref true in
    Array.iteri
      (fun fid fn ->
        let nb = Array.length fn.cblocks in
        if
          Array.length sc.sc_header.(fid) <> nb
          || Array.length sc.sc_inloop.(fid) <> nb
          || Array.length sc.sc_tags.(fid) <> nb
        then ok := false
        else
          Array.iteri
            (fun bi b ->
              if Array.length sc.sc_tags.(fid).(bi) <> Array.length b.cins
              then ok := false)
            fn.cblocks)
      cpl.cfuncs;
    if not !ok then Error "spin cache: block shape mismatch"
    else begin
      let c =
        {
          ic_header = sc.sc_header;
          ic_inloop = sc.sc_inloop;
          ic_tags = sc.sc_tags;
        }
      in
      let rec find = function
        | (i, c') :: rest -> if i == inst then Some c' else find rest
        | [] -> None
      in
      let rec publish () =
        let cur = Atomic.get cpl.cicache in
        match find cur with
        | Some _ -> () (* a run already built one; it is identical *)
        | None ->
            if
              List.length cur < 8
              && not (Atomic.compare_and_set cpl.cicache cur ((inst, c) :: cur))
            then publish ()
      in
      publish ();
      Ok ()
    end
  end

(* Top-level recursion (not an inner [let rec]): an inner recursive
   closure would be heap-allocated at every call on the non-flambda
   compiler, and this runs on the per-step spin path.  The same shape is
   used for every hot-path helper below. *)
let rec arr_mem_from (a : int array) x i =
  i < Array.length a && (Array.unsafe_get a i = x || arr_mem_from a x (i + 1))

let arr_mem (a : int array) x = arr_mem_from a x 0

let spin_pop m t ctx =
  t.spins <- List.tl t.spins;
  if not m.quiet then
    emit m (Event.Spin_exit { tid = t.tid; loop_id = ctx.sc_loop; ctx = ctx.sc_serial })

(* Close contexts of [f]'s depth whose loop does not contain the block
   whose containing-loops array is [containing]. *)
let rec spin_close m t (f : frame) containing =
  match t.spins with
  | c :: _ when c.sc_depth = f.fdepth && not (arr_mem containing c.sc_loop) ->
      spin_pop m t c;
      spin_close m t f containing
  | _ -> ()

(* Called whenever control in frame [f] lands on (the start of) block
   [blk]: close contexts whose loop no longer contains the block, then
   open one if the block is a marked loop header.  In the steady state —
   spinning around inside one loop — this touches two int-array cells and
   allocates nothing. *)
let spin_transition m t (f : frame) blk =
  match m.ic with
  | None -> ()
  | Some ic ->
      let fid = f.ffn.cfid in
      let containing = ic.ic_inloop.(fid).(blk) in
      spin_close m t f containing;
      let id = ic.ic_header.(fid).(blk) in
      if id >= 0 then begin
        let already =
          match t.spins with
          | c :: _ -> c.sc_loop = id && c.sc_depth = f.fdepth
          | [] -> false
        in
        if not already then begin
          m.serial <- m.serial + 1;
          t.spins <-
            { sc_loop = id; sc_serial = m.serial; sc_depth = f.fdepth } :: t.spins;
          if not m.quiet then
            emit m (Event.Spin_enter { tid = t.tid; loop_id = id; ctx = m.serial })
        end
      end

(* Close every context belonging to a popped frame (loop exited by
   returning out of the function). *)
let rec spin_unwind m t depth =
  match t.spins with
  | c :: _ when c.sc_depth >= depth ->
      spin_pop m t c;
      spin_unwind m t depth
  | _ -> ()

(* Only reached from event-emitting (non-quiet) read sites. *)
let spin_tags m t (f : frame) pc =
  match m.ic with
  | None -> []
  | Some ic -> (
      match ic.ic_tags.(f.ffn.cfid).(f.fblk).(pc) with
      | [||] -> []
      | ids ->
          List.filter_map
            (fun c ->
              if arr_mem ids c.sc_loop then Some (c.sc_loop, c.sc_serial) else None)
            t.spins)

(* ------------------------------------------------------------------ *)
(* Thread control                                                     *)

let advance t = (cur_frame t).fpc <- (cur_frame t).fpc + 1

(* Build a callee/child frame, evaluating the argument operands (in the
   caller's frame, left to right) straight into the parameter slots: no
   intermediate list, no quadratic [List.nth] binding. *)
let make_frame t (fn : cfunc) (caller : frame) (args : coperand array) fret fdepth =
  let fregs = Array.make fn.cnregs 0 in
  let fdef = Bytes.make fn.cnregs '\000' in
  for j = 0 to Array.length args - 1 do
    fregs.(j) <- ceval t caller args.(j);
    Bytes.unsafe_set fdef j '\001'
  done;
  { ffn = fn; fblk = 0; fpc = 0; fregs; fdef; fret; fdepth }

let wake_joiners m target =
  Array.iter
    (function
      | Some w -> (
          match w.status with
          | Blocked_join tg when tg = target ->
              w.status <- Runnable;
              if not m.quiet then
                emit m (Event.Join_return { tid = w.tid; target; loc = cur_loc w });
              advance w
          | _ -> ())
      | None -> ())
    m.threads

let thread_exit m t =
  t.status <- Done;
  spin_unwind m t 0;
  t.frames <- [];
  (* The kernel-visible "thread is gone" store: the cell lowered joins
     spin on.  Attributed to the exiting thread like a real runtime's
     final flag write. *)
  if m.cpl.td_declared then m.mem.(m.cpl.td_id).(t.tid) <- 1;
  if not m.quiet then begin
    emit m
      (Event.Write
         {
           tid = t.tid;
           base = thread_done_global;
           base_id = m.cpl.td_id;
           idx = t.tid;
           value = 1;
           loc = runtime_exit_loc t.tid;
           kind = Event.Plain;
         });
    emit m (Event.Thread_exit { tid = t.tid })
  end;
  wake_joiners m t.tid

(* Grant the mutex at [cell] to waiting thread [w], completing its pending
   Lock (or the reacquisition leg of a Cond_wait when [aw_cell] >= 0). *)
let grant_mutex m cell w aw_cell =
  let mu = mutex_at m cell in
  mu.owner <- w.tid;
  if not m.quiet then begin
    if aw_cell >= 0 then
      emit m
        (Event.Cv_wait_return
           {
             tid = w.tid;
             base = cell_base m aw_cell;
             idx = cell_idx m aw_cell;
             loc = cur_loc w;
           });
    emit m
      (Event.Lock_acq
         {
           tid = w.tid;
           base = cell_base m cell;
           idx = cell_idx m cell;
           loc = cur_loc w;
         })
  end;
  w.status <- Runnable;
  advance w

let release_mutex m t cell =
  let mu = mutex_at m cell in
  if mu.owner <> t.tid then
    if mu.owner >= 0 then
      fault t
        (Printf.sprintf "unlock of %s[%d] by non-owner" (cell_base m cell)
           (cell_idx m cell))
    else
      fault t
        (Printf.sprintf "unlock of free mutex %s[%d]" (cell_base m cell)
           (cell_idx m cell));
  if not m.quiet then
    emit m
      (Event.Lock_rel
         { tid = t.tid; base = cell_base m cell; idx = cell_idx m cell; loc = cur_loc t });
  if Queue.is_empty mu.mwaiters then mu.owner <- -1
  else begin
    let wt = Queue.pop mu.mwaiters in
    let w = thread m wt in
    match w.status with
    | Blocked_lock (_, aw_cell) -> grant_mutex m cell w aw_cell
    | _ -> internal "mutex waiter in wrong state"
  end

let wake_cv_waiter m c_cell =
  let c = cv_at m c_cell in
  if Queue.is_empty c.cwaiters then false
  else begin
    let wt, m_cell = Queue.pop c.cwaiters in
    let w = thread m wt in
    let mu = mutex_at m m_cell in
    if mu.owner < 0 then grant_mutex m m_cell w c_cell
    else begin
      w.status <- Blocked_lock (m_cell, c_cell);
      Queue.push wt mu.mwaiters
    end;
    true
  end

(* ------------------------------------------------------------------ *)
(* Instruction execution                                              *)

let binop_eval t op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then fault t "division by zero" else a / b
  | Mod -> if b = 0 then fault t "modulo by zero" else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a lsr (b land 62)

let cmp_eval op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let enter_call m t (f : frame) fn args ret =
  let nf = make_frame t fn f args ret (f.fdepth + 1) in
  f.fpc <- f.fpc + 1;
  t.frames <- nf :: t.frames;
  spin_transition m t nf 0

let exec_instr m t (f : frame) i =
  let tid = t.tid in
  match i with
  | CMov (d, o) ->
      set_slot f d (ceval t f o);
      f.fpc <- f.fpc + 1
  | CBinop (d, op, a, b) ->
      (* operand [b] first: the reference evaluated the two [eval] calls
         as OCaml function arguments, i.e. right to left *)
      let vb = ceval t f b in
      let va = ceval t f a in
      set_slot f d (binop_eval t op va vb);
      f.fpc <- f.fpc + 1
  | CCmp (d, op, a, b) ->
      let vb = ceval t f b in
      let va = ceval t f a in
      set_slot f d (cmp_eval op va vb);
      f.fpc <- f.fpc + 1
  | CLoad (d, a) ->
      let idx = resolve_idx m t f a in
      let v = m.mem.(a.ca_id).(idx) in
      if not m.quiet then
        emit m
          (Event.Read
             {
               tid;
               base = a.ca_base;
               base_id = a.ca_id;
               idx;
               value = v;
               loc = iloc f;
               kind = Event.Plain;
               spin = spin_tags m t f f.fpc;
             });
      set_slot f d v;
      f.fpc <- f.fpc + 1
  | CStore (a, o) ->
      let idx = resolve_idx m t f a in
      let v = ceval t f o in
      m.mem.(a.ca_id).(idx) <- v;
      if not m.quiet then
        emit m
          (Event.Write
             {
               tid;
               base = a.ca_base;
               base_id = a.ca_id;
               idx;
               value = v;
               loc = iloc f;
               kind = Event.Plain;
             });
      f.fpc <- f.fpc + 1
  | CCas (d, a, expect, new_) ->
      let idx = resolve_idx m t f a in
      let old = m.mem.(a.ca_id).(idx) in
      if not m.quiet then
        emit m
          (Event.Read
             {
               tid;
               base = a.ca_base;
               base_id = a.ca_id;
               idx;
               value = old;
               loc = iloc f;
               kind = Event.Atomic;
               spin = spin_tags m t f f.fpc;
             });
      if old = ceval t f expect then begin
        let v = ceval t f new_ in
        m.mem.(a.ca_id).(idx) <- v;
        if not m.quiet then
          emit m
            (Event.Write
               {
                 tid;
                 base = a.ca_base;
                 base_id = a.ca_id;
                 idx;
                 value = v;
                 loc = iloc f;
                 kind = Event.Atomic;
               });
        set_slot f d 1
      end
      else set_slot f d 0;
      f.fpc <- f.fpc + 1
  | CRmw (d, op, a, arg) ->
      let idx = resolve_idx m t f a in
      let old = m.mem.(a.ca_id).(idx) in
      if not m.quiet then
        emit m
          (Event.Read
             {
               tid;
               base = a.ca_base;
               base_id = a.ca_id;
               idx;
               value = old;
               loc = iloc f;
               kind = Event.Atomic;
               spin = spin_tags m t f f.fpc;
             });
      let v =
        match op with
        | Rmw_add -> old + ceval t f arg
        | Rmw_exchange -> ceval t f arg
        | Rmw_or -> old lor ceval t f arg
        | Rmw_and -> old land ceval t f arg
      in
      m.mem.(a.ca_id).(idx) <- v;
      if not m.quiet then
        emit m
          (Event.Write
             {
               tid;
               base = a.ca_base;
               base_id = a.ca_id;
               idx;
               value = v;
               loc = iloc f;
               kind = Event.Atomic;
             });
      set_slot f d old;
      f.fpc <- f.fpc + 1
  | CNop -> f.fpc <- f.fpc + 1
  | CYield ->
      Sched.force_switch m.sched;
      f.fpc <- f.fpc + 1
  | CCheck (o, msg) ->
      if ceval t f o = 0 then m.checks <- (iloc f, msg) :: m.checks;
      f.fpc <- f.fpc + 1
  | CCall (fn, args, ret) -> enter_call m t f fn args ret
  | CCall_indirect (ret, tgt, args) ->
      let ti = ceval t f tgt in
      if ti < 0 || ti >= Array.length m.cpl.cftable then
        fault t (Printf.sprintf "indirect call index %d out of range" ti)
      else begin
        let fn = m.cpl.cftable.(ti) in
        if Array.length args <> fn.cnparams then begin
          (* the reference evaluated every argument (left to right) before
             discovering the arity mismatch; keep any argument fault
             first *)
          for j = 0 to Array.length args - 1 do
            ignore (ceval t f args.(j))
          done;
          fault t (Printf.sprintf "arity mismatch calling %S" fn.cfname)
        end
        else enter_call m t f fn args ret
      end
  | CSpawn (d, fn, args) ->
      let nf = make_frame t fn f args (-1) 0 in
      if m.n_threads >= max_threads then fault t "thread limit exceeded";
      let child_tid = m.n_threads in
      m.n_threads <- m.n_threads + 1;
      let child =
        { tid = child_tid; frames = [ nf ]; status = Runnable; spins = [] }
      in
      m.threads.(child_tid) <- Some child;
      spin_transition m child nf 0;
      set_slot f d child_tid;
      if not m.quiet then begin
        emit m (Event.Spawn_ev { parent = tid; child = child_tid; loc = iloc f });
        emit m (Event.Thread_start { tid = child_tid })
      end;
      f.fpc <- f.fpc + 1
  | CJoin o -> (
      let target = ceval t f o in
      if target < 0 || target >= m.n_threads then
        fault t (Printf.sprintf "join of unknown thread %d" target)
      else
        match m.threads.(target) with
        | Some tt when tt.status = Done ->
            if not m.quiet then
              emit m (Event.Join_return { tid; target; loc = iloc f });
            f.fpc <- f.fpc + 1
        | Some _ -> t.status <- Blocked_join target
        | None -> fault t "join of never-spawned thread")
  | CLock a ->
      let idx = resolve_idx m t f a in
      let cell = cell_of m a idx in
      let mu = mutex_at m cell in
      if mu.owner < 0 then begin
        mu.owner <- tid;
        if not m.quiet then
          emit m (Event.Lock_acq { tid; base = a.ca_base; idx; loc = iloc f });
        f.fpc <- f.fpc + 1
      end
      else if mu.owner = tid then
        fault t (Printf.sprintf "recursive lock of %s[%d]" a.ca_base idx)
      else begin
        Queue.push tid mu.mwaiters;
        t.status <- Blocked_lock (cell, -1)
      end
  | CUnlock a ->
      let idx = resolve_idx m t f a in
      release_mutex m t (cell_of m a idx);
      f.fpc <- f.fpc + 1
  | CCond_wait (cva, ma) ->
      let c_idx = resolve_idx m t f cva in
      let c_cell = cell_of m cva c_idx in
      let m_cell = cell_of m ma (resolve_idx m t f ma) in
      let mu = mutex_at m m_cell in
      if mu.owner <> tid then fault t "cond_wait without holding the mutex";
      if not m.quiet then
        emit m
          (Event.Cv_wait_begin { tid; base = cva.ca_base; idx = c_idx; loc = iloc f });
      release_mutex m t m_cell;
      Queue.push (tid, m_cell) (cv_at m c_cell).cwaiters;
      t.status <- Blocked_cv (c_cell, m_cell)
  | CCond_signal a ->
      let idx = resolve_idx m t f a in
      let cell = cell_of m a idx in
      let had_waiter = not (Queue.is_empty (cv_at m cell).cwaiters) in
      if not m.quiet then
        emit m
          (Event.Cv_signal
             {
               tid;
               base = a.ca_base;
               idx;
               loc = iloc f;
               broadcast = false;
               had_waiter;
             });
      ignore (wake_cv_waiter m cell);
      f.fpc <- f.fpc + 1
  | CCond_broadcast a ->
      let idx = resolve_idx m t f a in
      let cell = cell_of m a idx in
      let had_waiter = not (Queue.is_empty (cv_at m cell).cwaiters) in
      if not m.quiet then
        emit m
          (Event.Cv_signal
             {
               tid;
               base = a.ca_base;
               idx;
               loc = iloc f;
               broadcast = true;
               had_waiter;
             });
      while wake_cv_waiter m cell do
        ()
      done;
      f.fpc <- f.fpc + 1
  | CBarrier_init (a, n) ->
      let idx = resolve_idx m t f a in
      let total = ceval t f n in
      if total <= 0 then fault t "barrier initialized with non-positive count";
      m.barriers.(cell_of m a idx) <-
        Some { btotal = total; border = Array.make total 0; bn = 0; bgen = 0 };
      f.fpc <- f.fpc + 1
  | CBarrier_wait a -> (
      let idx = resolve_idx m t f a in
      let cell = cell_of m a idx in
      match m.barriers.(cell) with
      | None -> fault t "barrier_wait before barrier_init"
      | Some bar ->
          if not m.quiet then
            emit m
              (Event.Barrier_arrive
                 { tid; base = a.ca_base; idx; generation = bar.bgen; loc = iloc f });
          (* O(1) arrival: stamp the slot, bump the counter *)
          bar.border.(bar.bn) <- tid;
          bar.bn <- bar.bn + 1;
          if bar.bn = bar.btotal then begin
            let gen = bar.bgen in
            let n = bar.bn in
            bar.bgen <- gen + 1;
            bar.bn <- 0;
            for i = 0 to n - 1 do
              let wt = bar.border.(i) in
              let w = thread m wt in
              if not m.quiet then
                emit m
                  (Event.Barrier_pass
                     {
                       tid = wt;
                       base = a.ca_base;
                       idx;
                       generation = gen;
                       loc = cur_loc w;
                     });
              if wt <> tid then begin
                w.status <- Runnable;
                advance w
              end
            done;
            f.fpc <- f.fpc + 1
          end
          else t.status <- Blocked_barrier cell)
  | CSem_init (a, n) ->
      let idx = resolve_idx m t f a in
      let v = ceval t f n in
      (sem_at m (cell_of m a idx)).count <- v;
      f.fpc <- f.fpc + 1
  | CSem_post a ->
      let idx = resolve_idx m t f a in
      let cell = cell_of m a idx in
      let s = sem_at m cell in
      if not m.quiet then
        emit m (Event.Sem_post_ev { tid; base = a.ca_base; idx; loc = iloc f });
      if Queue.is_empty s.swaiters then s.count <- s.count + 1
      else begin
        let wt = Queue.pop s.swaiters in
        let w = thread m wt in
        if not m.quiet then
          emit m (Event.Sem_acquire { tid = wt; base = a.ca_base; idx; loc = cur_loc w });
        w.status <- Runnable;
        advance w
      end;
      f.fpc <- f.fpc + 1
  | CSem_wait a ->
      let idx = resolve_idx m t f a in
      let cell = cell_of m a idx in
      let s = sem_at m cell in
      if s.count > 0 then begin
        s.count <- s.count - 1;
        if not m.quiet then
          emit m (Event.Sem_acquire { tid; base = a.ca_base; idx; loc = iloc f });
        f.fpc <- f.fpc + 1
      end
      else begin
        Queue.push tid s.swaiters;
        t.status <- Blocked_sem cell
      end

let goto_block m t (f : frame) i =
  f.fblk <- i;
  f.fpc <- 0;
  spin_transition m t f i

let exec_term m t (f : frame) =
  match f.ffn.cblocks.(f.fblk).cterm with
  | CGoto i -> goto_block m t f i
  | CBr (o, a, b) -> goto_block m t f (if ceval t f o <> 0 then a else b)
  | CExit -> thread_exit m t
  | CRet o -> (
      (* evaluate before unwinding, like the reference *)
      let v = match o with Some op -> ceval t f op | None -> 0 in
      spin_unwind m t f.fdepth;
      t.frames <- List.tl t.frames;
      match t.frames with
      | [] -> thread_exit m t
      | nf :: _ -> if f.fret >= 0 then set_slot nf f.fret v)

let step m t =
  let f = cur_frame t in
  let b = f.ffn.cblocks.(f.fblk) in
  if f.fpc < Array.length b.cins then
    exec_instr m t f (Array.unsafe_get b.cins f.fpc)
  else exec_term m t f

(* ------------------------------------------------------------------ *)
(* Top-level loop                                                     *)

let inject_spurious_wakeup m =
  (* Pick some condition-variable waiter and wake it without a signal.
     [cvs_named] mirrors the reference machine's name-keyed table — same
     keys inserted in the same order — so "some waiter" is the same
     waiter. *)
  let woken = ref false in
  Hashtbl.iter
    (fun _key cell ->
      if not !woken then
        match m.cvs.(cell) with
        | Some c when not (Queue.is_empty c.cwaiters) ->
            woken := true;
            ignore (wake_cv_waiter m cell)
        | _ -> ())
    m.cvs_named

(* Fuel ran out: was anybody stuck inside an instrumented spinning read
   loop?  If so the exhaustion is a livelock — the paper's "spinning read
   loop never released by a counterpart write" — and we can name the loop
   and the condition variables it reads.  Benign exhaustion (long-running
   compute, no active spin context) stays [Fuel_exhausted]. *)
let livelock_sites m =
  match m.cfg.instrument with
  | None -> []
  | Some inst ->
      let sites = ref [] in
      for i = m.n_threads - 1 downto 0 do
        match m.threads.(i) with
        | Some t -> (
            match t.status with
            | Runnable -> (
                match t.spins with
                | c :: _ -> (
                    match Instrument.find_spin inst c.sc_loop with
                    | { Instrument.s_cand = cand; _ } ->
                        sites :=
                          {
                            sp_tid = t.tid;
                            sp_loop = c.sc_loop;
                            sp_loc =
                              {
                                lfunc = cand.Arde_cfg.Spin.c_func;
                                lblk = cand.Arde_cfg.Spin.c_header;
                                lidx = 0;
                              };
                            sp_bases = cand.Arde_cfg.Spin.c_bases;
                          }
                          :: !sites
                    | exception Not_found -> ())
                | [] -> ())
            | _ -> ())
        | None -> ()
      done;
      !sites

let exhaustion_outcome m =
  match livelock_sites m with [] -> Fuel_exhausted | sites -> Livelock sites

(* Refill the reusable runnable buffer (ascending tids); returns the live
   count.  Runs once per step, hence the closure-free top-level shape. *)
let rec fill_runnable threads buf n i k =
  if i >= n then k
  else
    match threads.(i) with
    | Some t -> (
        match t.status with
        | Runnable ->
            Array.unsafe_set buf k i;
            fill_runnable threads buf n (i + 1) (k + 1)
        | _ -> fill_runnable threads buf n (i + 1) k)
    | None -> fill_runnable threads buf n (i + 1) k

let run cfg cpl =
  let mem = Array.make (Arde_tir.Intern.n_bases cpl.cintern) [||] in
  (* Iterating in declaration order means a duplicate declaration's last
     row wins, matching the historical Hashtbl.replace behaviour. *)
  List.iter
    (fun gl ->
      mem.(Arde_tir.Intern.id cpl.cintern gl.gname) <- Array.make gl.size gl.ginit)
    cpl.prog.globals;
  let sync_cells = max cpl.ctotal 1 in
  let m =
    {
      cfg;
      cpl;
      quiet = Observer.is_none cfg.observer;
      mem;
      threads = Array.make max_threads None;
      n_threads = 0;
      sched = Sched.create cfg.policy ~seed:cfg.seed;
      rng = Arde_util.Prng.create (cfg.seed lxor 0x5bd1e995);
      mutexes = Array.make sync_cells None;
      cvs = Array.make sync_cells None;
      barriers = Array.make sync_cells None;
      sems = Array.make sync_cells None;
      cvs_named = Hashtbl.create 8;
      runnable = Array.make max_threads 0;
      ic =
        (match cfg.instrument with
        | None -> None
        | Some inst -> Some (icache_for cpl inst));
      serial = 0;
      checks = [];
      steps = 0;
      thread_steps = Array.make max_threads 0;
      last_tid = -1;
      context_switches = 0;
    }
  in
  let entry = cpl.centry in
  let ef =
    {
      ffn = entry;
      fblk = 0;
      fpc = 0;
      fregs = Array.make entry.cnregs 0;
      fdef = Bytes.make entry.cnregs '\000';
      fret = -1;
      fdepth = 0;
    }
  in
  let main = { tid = 0; frames = [ ef ]; status = Runnable; spins = [] } in
  m.threads.(0) <- Some main;
  m.n_threads <- 1;
  spin_transition m main ef 0;
  if not m.quiet then emit m (Event.Thread_start { tid = 0 });
  let buf = m.runnable in
  let blocked_list () =
    let rec go i acc =
      if i < 0 then acc
      else
        match m.threads.(i) with
        | Some t -> (
            match t.status with
            | Done | Runnable -> go (i - 1) acc
            | _ -> go (i - 1) (i :: acc))
        | None -> go (i - 1) acc
    in
    go (m.n_threads - 1) []
  in
  (* Tail-recursive driver with no per-step [ref] or list: one buffer
     refill, one scheduler pick, one step. *)
  let rec drive () =
    let n = fill_runnable m.threads buf m.n_threads 0 0 in
    if n = 0 then
      match blocked_list () with [] -> Finished | blocked -> Deadlock blocked
    else if m.steps >= cfg.fuel then exhaustion_outcome m
    else begin
      m.steps <- m.steps + 1;
      (* the injection may wake a thread, but — like the reference — this
         step's pick is over the pre-injection runnable set *)
      if cfg.spurious_wakeups && Arde_util.Prng.int m.rng 256 = 0 then
        inject_spurious_wakeup m;
      let tid = Sched.pick m.sched ~runnable:buf ~n in
      m.thread_steps.(tid) <- m.thread_steps.(tid) + 1;
      if tid <> m.last_tid then begin
        if m.last_tid >= 0 then m.context_switches <- m.context_switches + 1;
        m.last_tid <- tid
      end;
      let t = thread m tid in
      match step m t with
      | () -> drive ()
      | exception Fault_exn (floc, msg) -> Fault { ftid = tid; floc; msg }
    end
  in
  let outcome = drive () in
  (* Rebuild the string-keyed view of final memory for result consumers;
     rows are shared with the machine, not copied. *)
  let memory = Hashtbl.create 16 in
  List.iter
    (fun gl ->
      Hashtbl.replace memory gl.gname mem.(Arde_tir.Intern.id cpl.cintern gl.gname))
    cpl.prog.globals;
  {
    outcome;
    steps = m.steps;
    threads_spawned = m.n_threads;
    check_failures = List.rev m.checks;
    memory;
    thread_steps = Array.sub m.thread_steps 0 m.n_threads;
    context_switches = m.context_switches;
  }

let run_program cfg prog = run cfg (compile prog)
let read_global res base idx = (Hashtbl.find res.memory base).(idx)

let pp_outcome ppf = function
  | Finished -> Format.pp_print_string ppf "finished"
  | Deadlock tids ->
      Format.fprintf ppf "deadlock (threads %s)"
        (String.concat ", " (List.map string_of_int tids))
  | Fuel_exhausted -> Format.pp_print_string ppf "fuel exhausted"
  | Livelock sites ->
      Format.fprintf ppf "livelock (%s)"
        (String.concat "; "
           (List.map
              (fun s ->
                Printf.sprintf "T%d spinning at %s/%s on %s" s.sp_tid
                  s.sp_loc.lfunc s.sp_loc.lblk
                  (String.concat ", " s.sp_bases))
              sites))
  | Fault { ftid; floc; msg } ->
      Format.fprintf ppf "fault in T%d at %a: %s" ftid Arde_tir.Pretty.loc floc msg
