(** Thread scheduling policies for the interpreting machine.

    The machine asks the scheduler which runnable thread executes the next
    instruction.  All policies are deterministic given their seed, which is
    what makes every experiment in this repository replayable. *)

type policy =
  | Round_robin of int
      (* quantum in instructions; fully deterministic, used by semantics
         tests *)
  | Uniform  (** a fresh uniform pick every instruction; maximal churn *)
  | Chunked of int
      (* run the current thread for a random burst with the given mean
         length, then switch; the default — realistic preemption that still
         exposes racy interleavings across seeds *)

type t

val create : policy -> seed:int -> t

val pick : t -> runnable:int array -> n:int -> int
(** Choose the next thread among the first [n] entries of [runnable]
    (ascending, [n] ≥ 1).  The buffer is caller-owned and reused across
    steps — [pick] never allocates, and for a given policy + seed the
    choice (and the PRNG draw sequence) depends only on the successive
    runnable sets, not on how they are stored. *)

val force_switch : t -> unit
(** A [Yield] hint: end the current burst so another thread gets picked. *)

val policy_name : policy -> string
(** ["rr:N"], ["uniform"] or ["chunked:N"] — the spelling {!parse_policy}
    accepts, used by the CLI and the serve wire protocol. *)

val parse_policy : string -> (policy, string) result
(** Inverse of {!policy_name}. *)
