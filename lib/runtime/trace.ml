type t = { mutable rev_events : Event.t list; mutable n : int; mutable h : int }

let create () = { rev_events = []; n = 0; h = 0x811c9dc5 }

let observer t ev =
  t.rev_events <- ev :: t.rev_events;
  t.n <- t.n + 1;
  t.h <- (t.h * 16777619) lxor Hashtbl.hash ev

let events t = List.rev t.rev_events
let length t = t.n
let hash t = t.h land max_int

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun ev -> Format.fprintf ppf "%a@," Event.pp ev) (events t);
  Format.fprintf ppf "@]"
