(** The compact binary trace format — record cheap, analyze later.

    A recorded trace is the detector's input decoupled from execution:
    the machine runs once with a {!sink} attached (near the cost of the
    quiet fast path), and the expensive analysis replays the byte stream
    through an engine any number of times, on any host, without
    re-running the program (Ronsse & De Bosschere's record/replay split).

    {2 Wire layout}

    All integers are LEB128 varints over the int's 63-bit pattern
    (at most 9 bytes); [signed] fields are zigzag-folded first so small
    negatives stay short.  Strings are length-prefixed bytes.

    {v
    file    := magic "ARDETRC\x01" · varint version
               header · section* · 0xEE · EOF
    header  := str digest_hex · str mode_id · str options_json
               · str source · str program_text
    section := 0xA5 · varint seed · u8 kind
               kind 0 (recorded):  varint n_events · varint events_len
                                   · events_len bytes · varint fnv_hash
                                   · trailer
               kind 1 (cancelled): nothing further
    trailer := outcome · varint steps
               · varint n · (loc · str msg)^n     (check failures)
    v}

    Event bytes are self-contained per section (sections are recorded by
    parallel seeds and decode independently).  An event is a tag byte
    followed by its fields.  Two interning schemes keep it compact and
    the encoder allocation-free:

    - {b Strings} (function names, block labels, sync bases) are
      interned on first occurrence within the section: a reference is
      [varint 0] followed by the length-prefixed definition the first
      time, [varint k] for table entry [k-1] afterwards.
    - {b Read/write bases} ride the machine's dense base-id vocabulary:
      the common form is [varint (base_id+1)], with the base string
      defined inline (length-prefixed) at the id's first occurrence.
      [varint 0] escapes to an explicit string reference plus signed id,
      for producers without an intern table ([base_id < 0]) or whose
      id→string mapping is not functional — so decoding is exact for
      hand-built streams too.

    Source locations are not interned as records: a loc is two string
    references plus a signed index.  That choice is what keeps the
    recording fast path cheap — a direct-mapped cache in front of the
    intern table resolves hot strings with one short comparison, and no
    loc record is ever hashed.  A hot read in a hot loop costs
    ~8 bytes.

    The per-section FNV hash is verified by {!read_sections}, so a
    corrupted body is a structured {!error}, never a plausible decode.
    Everything here returns structured errors on hostile input —
    truncation, overlong varints, interning references out of range,
    oversized declared lengths — because traces cross the serve socket.

    The typed view (parsed mode, options, program) lives in
    [Arde.Recorded]; this module knows only bytes, events and outcomes. *)

open Arde_tir.Types

(** {1 Errors} *)

type error =
  | Bad_magic  (** not a trace file *)
  | Bad_version of int  (** a future (or corrupt) format version *)
  | Truncated of string  (** input ended while reading the named piece *)
  | Corrupt of { at : int; what : string }
      (** structurally invalid at byte offset [at] *)
  | Limit of string  (** a declared size exceeds this reader's bounds *)

val error_to_string : error -> string
val format_version : int

(** {1 Header} *)

type header = {
  h_digest : string;  (** hex digest of the canonical program text *)
  h_mode : string;  (** detector mode, [Config.mode_id] wire form *)
  h_options : string;  (** minified [Options.to_json] document *)
  h_source : string;  (** free-form label (workload name); may be [""] *)
  h_program : string;  (** the program, canonical TIR text *)
}

(** {1 Outcomes}

    The machine-side half of a seed's run — what replay cannot recompute
    without executing.  Mirrors [Machine.outcome] plus the driver's
    crashed/cancelled seed outcomes, but structurally, so this module
    stays independent of the machine. *)

type livelock_site = {
  w_tid : int;
  w_loop : int;
  w_loc : loc;
  w_bases : string list;
}

type outcome =
  | Finished
  | Deadlock of int list
  | Fuel_exhausted
  | Livelock of livelock_site list
  | Fault of { ftid : int; floc : loc; msg : string }
  | Crashed of loc option * string
      (** the detector crashed on this seed; events are the prefix the
          engine saw before dying *)
  | Cancelled  (** the seed never ran (deadline or drain) *)

type trailer = {
  t_outcome : outcome;
  t_steps : int;
  t_check_failures : (loc * string) list;
}

(** {1 Recording} *)

type sink
(** A per-seed recording encoder: preallocated growable buffer plus the
    section's interning tables.  Appending an event writes tag and
    varints in place — no per-event allocation beyond the (rare) first
    occurrence of a string or base id. *)

val sink : ?capacity:int -> unit -> sink
(** [capacity] is the initial buffer size in bytes (default 8 KiB); the
    buffer doubles when full. *)

val sink_observer : sink -> Observer.t
(** The recording observer: feed it to the machine (tee'd ahead of the
    engine when recording a live detection run). *)

val sink_events : sink -> int
val sink_size : sink -> int  (** encoded bytes so far *)

(** {1 Sections and assembly} *)

type section = {
  s_seed : int;
  s_n_events : int;
  s_events : string;  (** encoded event bytes; [""] for [Cancelled] *)
  s_hash : int;  (** FNV-1a-style hash of [s_events] *)
  s_trailer : trailer;
}

val section_of_sink : sink -> seed:int -> trailer -> section
(** Seal the sink into a section (copies the buffer; the sink should be
    discarded). *)

val cancelled_section : seed:int -> section

val assemble : header -> section list -> string
(** The complete binary trace, sections in the given (seed) order. *)

(** {1 Reading} *)

val read_header : string -> (header, error) result
(** Decode the header only — [arde trace info]'s cheap path; the rest of
    the input is not validated. *)

type summary = {
  y_seed : int;
  y_n_events : int;
  y_bytes : int;  (** encoded event bytes *)
  y_outcome : outcome;
  y_steps : int;
}

val read_info : string -> (header * summary list, error) result
(** Header plus per-seed summaries, skipping over every event body
    (validates framing, not content). *)

val read_sections : string -> (header * section list, error) result
(** Full structural validation including the per-section event hash;
    event bodies stay encoded (decode per section as needed). *)

val decode_events : section -> (Event.t -> unit) -> (unit, error) result
(** Stream the section's events in recorded order.  The callback must
    not raise (a replay engine never does); structural errors stop the
    stream and are returned. *)

val decode_events_list : section -> (Event.t list, error) result

val encode_events : Event.t list -> string * int
(** [events → (bytes, hash)] through a fresh sink — the codec-test and
    bench path; recording proper uses {!sink_observer}. *)

(** {1 Wire primitives}

    The varint/zigzag/length-prefix building blocks, exposed so other
    binary codecs (the serve socket's binary wire, [Arde_server]) share
    one implementation and one set of hostile-input checks instead of
    reinventing them.  A {!sink} doubles as a plain byte builder: ignore
    the interning tables and use only these writers, then take
    {!sink_contents}. *)

val put_u8 : sink -> int -> unit
val put_varint : sink -> int -> unit
(** LEB128 over the int's 63-bit pattern; at most 9 bytes. *)

val put_signed : sink -> int -> unit
(** Zigzag-folded {!put_varint}. *)

val put_lpstr : sink -> string -> unit
(** Varint length prefix, then the bytes. *)

val sink_contents : sink -> string
(** The bytes written so far, as a fresh string. *)

val hash_bytes : string -> int
(** The FNV-1a integrity hash used for section bodies — exposed so other
    on-disk formats (the serve bundle store) checksum with the same
    function.  Always non-negative, so it round-trips {!put_varint}. *)

exception Err of error
(** Raised by the [get_*] readers below (and only by them — the
    document-level entry points above catch it and return [result]). *)

type reader
(** A bounded cursor over encoded bytes; all reads check the window and
    raise {!Err} on truncation or structural garbage. *)

val reader : ?off:int -> ?limit:int -> string -> reader
val reader_pos : reader -> int
val reader_left : reader -> int  (** bytes remaining in the window *)

val get_u8 : reader -> string -> int
val get_varint : reader -> string -> int
val get_signed : reader -> string -> int

val get_lpstr : reader -> string -> string
(** Length-prefixed string, capped at the trace format's 16 MiB string
    limit. *)

val get_lpbytes : reader -> string -> string
(** Length-prefixed bytes bounded only by the reader's window — for
    payloads whose size is policed elsewhere (the serve frame cap).

    The [string] argument on every reader names the piece being read,
    so {!error} messages locate the failure ("truncated … in [what]"). *)
