open Arde_tir.Types

(* ------------------------------------------------------------------ *)
(* Errors                                                             *)

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated of string
  | Corrupt of { at : int; what : string }
  | Limit of string

let error_to_string = function
  | Bad_magic -> "not an arde trace (bad magic)"
  | Bad_version v ->
      Printf.sprintf "unsupported trace format version %d (this build reads 1)"
        v
  | Truncated what -> Printf.sprintf "truncated trace: input ended in %s" what
  | Corrupt { at; what } ->
      Printf.sprintf "corrupt trace at byte %d: %s" at what
  | Limit what -> Printf.sprintf "trace exceeds reader limit: %s" what

let format_version = 1
let magic = "ARDETRC\x01"

(* Reader-side bounds: far above anything the repository records, low
   enough that a hostile length field cannot make us allocate wildly. *)
let max_lpstr = 1 lsl 24 (* 16 MiB: bounds the program text *)
let max_sections = 1 lsl 16
let max_list = 1 lsl 20 (* deadlock tids, livelock sites, check failures *)

type header = {
  h_digest : string;
  h_mode : string;
  h_options : string;
  h_source : string;
  h_program : string;
}

type livelock_site = {
  w_tid : int;
  w_loop : int;
  w_loc : loc;
  w_bases : string list;
}

type outcome =
  | Finished
  | Deadlock of int list
  | Fuel_exhausted
  | Livelock of livelock_site list
  | Fault of { ftid : int; floc : loc; msg : string }
  | Crashed of loc option * string
  | Cancelled

type trailer = {
  t_outcome : outcome;
  t_steps : int;
  t_check_failures : (loc * string) list;
}

(* ------------------------------------------------------------------ *)
(* Writing primitives: a growable byte buffer written in place         *)

(* A direct-mapped interning cache in front of the structural table,
   indexed by a three-character hash (length, first, last) so a lookup
   never walks the whole string.  A hit needs one [String.equal] on a
   short name; collisions and cold strings fall back to the Hashtbl,
   which remains the source of truth — the cache only memoizes its
   answers, so eviction can never change what gets encoded.  512 slots
   hold every function name, block label and base a realistic program
   has, with collisions the only misses in steady state. *)
let cache_slots = 512 (* power of two *)

type sink = {
  mutable buf : Bytes.t;
  mutable len : int;
  strs : (string, int) Hashtbl.t;
  cache_str : string array;
  cache_id : int array;
  mutable bdef : string option array;
      (* read/write bases keyed by the machine's dense base id: [Some b]
         once id [i] has been defined in this section as string [b] *)
  mutable n_events : int;
}

(* One shared placeholder for empty cache slots; emptiness is decided by
   [cache_id = -1], never by comparing against this string, so a program
   whose names happen to collide with it stays correct. *)
let empty_slot = "\000"

let sink ?(capacity = 8192) () =
  {
    buf = Bytes.create (max 64 capacity);
    len = 0;
    strs = Hashtbl.create 64;
    cache_str = Array.make cache_slots empty_slot;
    cache_id = Array.make cache_slots (-1);
    bdef = Array.make 64 None;
    n_events = 0;
  }

let str_slot str =
  let n = String.length str in
  if n = 0 then 0
  else
    n
    lxor (Char.code (String.unsafe_get str 0) lsl 3)
    lxor (Char.code (String.unsafe_get str (n - 1)) lsl 9)
    land (cache_slots - 1)

let ensure s n =
  let need = s.len + n in
  if need > Bytes.length s.buf then begin
    let cap = ref (Bytes.length s.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit s.buf 0 b 0 s.len;
    s.buf <- b
  end

let put_u8 s b =
  ensure s 1;
  Bytes.unsafe_set s.buf s.len (Char.unsafe_chr (b land 0xff));
  s.len <- s.len + 1

(* LEB128 over the int's 63-bit pattern: [lsr] makes negative inputs
   terminate after nine bytes.  One [ensure] covers the whole varint, so
   the digit loop runs on unsafe writes. *)
let put_varint s n =
  ensure s 10;
  let b = s.buf in
  let rec go pos n =
    if n land lnot 0x7f = 0 then begin
      Bytes.unsafe_set b pos (Char.unsafe_chr n);
      pos + 1
    end
    else begin
      Bytes.unsafe_set b pos (Char.unsafe_chr (n land 0x7f lor 0x80));
      go (pos + 1) (n lsr 7)
    end
  in
  s.len <- go s.len n

(* Zigzag fold: small magnitudes of either sign stay one byte. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))
let put_signed s n = put_varint s (zigzag n)

let put_lpstr s str =
  let n = String.length str in
  put_varint s n;
  ensure s n;
  Bytes.blit_string str 0 s.buf s.len n;
  s.len <- s.len + n

(* Intern a string in the section's table: 0 announces a new entry
   (definition follows inline), k>0 references entry k-1. *)
let put_strref_slow s str slot =
  (match Hashtbl.find_opt s.strs str with
  | Some id ->
      s.cache_id.(slot) <- id;
      put_varint s (id + 1)
  | None ->
      let id = Hashtbl.length s.strs in
      Hashtbl.add s.strs str id;
      s.cache_id.(slot) <- id;
      put_varint s 0;
      put_lpstr s str);
  s.cache_str.(slot) <- str

let put_strref s str =
  let slot = str_slot str in
  let c = Array.unsafe_get s.cache_str slot in
  let id = Array.unsafe_get s.cache_id slot in
  if id >= 0 && (c == str || String.equal c str) then put_varint s (id + 1)
  else put_strref_slow s str slot

(* A source location is three interned-string/varint fields — no
   loc-record interning table, so no record hashing on the hot path. *)
let put_loc s (l : loc) =
  put_strref s l.lfunc;
  put_strref s l.lblk;
  put_signed s l.lidx

(* Read/write bases ride the machine's dense base-id vocabulary: the
   common case is one varint [id+1], with the string defined inline at
   the id's first occurrence in the section.  [0] is the escape for
   producers without an intern table (hand-built events, [base_id < 0])
   — or whose id→string mapping is not functional, which the machine
   never produces but hostile or hand-built streams may: the string and
   the id are then spelled out, so decoding is exact either way. *)
let max_base_id = 1 lsl 20

let put_base_escape s base base_id =
  put_varint s 0;
  put_strref s base;
  put_signed s base_id

let put_baseref s base base_id =
  if base_id < 0 || base_id >= max_base_id then put_base_escape s base base_id
  else begin
    if base_id >= Array.length s.bdef then begin
      let cap = ref (2 * Array.length s.bdef) in
      while base_id >= !cap do
        cap := !cap * 2
      done;
      let a = Array.make !cap None in
      Array.blit s.bdef 0 a 0 (Array.length s.bdef);
      s.bdef <- a
    end;
    match Array.unsafe_get s.bdef base_id with
    | Some b when b == base || String.equal b base ->
        put_varint s (base_id + 1)
    | Some _ -> put_base_escape s base base_id
    | None ->
        s.bdef.(base_id) <- Some base;
        put_varint s (base_id + 1);
        put_lpstr s base
  end

(* ------------------------------------------------------------------ *)
(* The read/write fast path.  Reads and writes are nearly the whole
   stream, so their arms pay for one capacity check up front and then
   write every field unchecked.  A slow-path detour (string definition,
   base escape) does its own checked writes and restores the slack
   before returning, so the invariant holds across the whole arm. *)

let fast_slack = 96
(* tag + four signed varints + two string refs + lidx + spin count at
   their ten-byte worst case stays under this. *)

let uput_varint s n =
  let b = s.buf in
  let rec go pos n =
    if n land lnot 0x7f = 0 then begin
      Bytes.unsafe_set b pos (Char.unsafe_chr n);
      pos + 1
    end
    else begin
      Bytes.unsafe_set b pos (Char.unsafe_chr (n land 0x7f lor 0x80));
      go (pos + 1) (n lsr 7)
    end
  in
  s.len <- go s.len n

let uput_signed s n = uput_varint s (zigzag n)

let fput_strref s str =
  let slot = str_slot str in
  let c = Array.unsafe_get s.cache_str slot in
  let id = Array.unsafe_get s.cache_id slot in
  if id >= 0 && (c == str || String.equal c str) then uput_varint s (id + 1)
  else begin
    put_strref_slow s str slot;
    ensure s fast_slack
  end

let fput_baseref s base base_id =
  if
    base_id >= 0
    && base_id < Array.length s.bdef
    &&
    match Array.unsafe_get s.bdef base_id with
    | Some b -> b == base || String.equal b base
    | None -> false
  then uput_varint s (base_id + 1)
  else begin
    put_baseref s base base_id;
    ensure s fast_slack
  end

(* ------------------------------------------------------------------ *)
(* Event encoding                                                     *)

let tag_read_plain = 1
let tag_read_atomic = 2
let tag_write_plain = 3
let tag_write_atomic = 4
let tag_lock_acq = 5
let tag_lock_rel = 6
let tag_cv_signal = 7
let tag_cv_wait_begin = 8
let tag_cv_wait_return = 9
let tag_barrier_arrive = 10
let tag_barrier_pass = 11
let tag_sem_post = 12
let tag_sem_acquire = 13
let tag_spawn = 14
let tag_join_return = 15
let tag_thread_start = 16
let tag_thread_exit = 17
let tag_spin_enter = 18
let tag_spin_exit = 19

let put_sync s tag ~tid ~base ~idx ~loc =
  put_u8 s tag;
  put_signed s tid;
  put_strref s base;
  put_signed s idx;
  put_loc s loc

let rec put_spins s = function
  | [] -> ()
  | (l, c) :: rest ->
      put_signed s l;
      put_signed s c;
      put_spins s rest

let encode_event s (ev : Event.t) =
  (match ev with
  | Event.Read { tid; base; base_id; idx; value; loc; kind; spin } ->
      ensure s fast_slack;
      Bytes.unsafe_set s.buf s.len
        (Char.unsafe_chr
           (match kind with
           | Event.Plain -> tag_read_plain
           | Event.Atomic -> tag_read_atomic));
      s.len <- s.len + 1;
      uput_signed s tid;
      fput_baseref s base base_id;
      uput_signed s idx;
      uput_signed s value;
      fput_strref s loc.lfunc;
      fput_strref s loc.lblk;
      uput_signed s loc.lidx;
      (match spin with
      | [] -> uput_varint s 0
      | _ ->
          uput_varint s (List.length spin);
          put_spins s spin)
  | Event.Write { tid; base; base_id; idx; value; loc; kind } ->
      ensure s fast_slack;
      Bytes.unsafe_set s.buf s.len
        (Char.unsafe_chr
           (match kind with
           | Event.Plain -> tag_write_plain
           | Event.Atomic -> tag_write_atomic));
      s.len <- s.len + 1;
      uput_signed s tid;
      fput_baseref s base base_id;
      uput_signed s idx;
      uput_signed s value;
      fput_strref s loc.lfunc;
      fput_strref s loc.lblk;
      uput_signed s loc.lidx
  | Event.Lock_acq { tid; base; idx; loc } ->
      put_sync s tag_lock_acq ~tid ~base ~idx ~loc
  | Event.Lock_rel { tid; base; idx; loc } ->
      put_sync s tag_lock_rel ~tid ~base ~idx ~loc
  | Event.Cv_signal { tid; base; idx; loc; broadcast; had_waiter } ->
      put_sync s tag_cv_signal ~tid ~base ~idx ~loc;
      put_u8 s ((if broadcast then 1 else 0) lor if had_waiter then 2 else 0)
  | Event.Cv_wait_begin { tid; base; idx; loc } ->
      put_sync s tag_cv_wait_begin ~tid ~base ~idx ~loc
  | Event.Cv_wait_return { tid; base; idx; loc } ->
      put_sync s tag_cv_wait_return ~tid ~base ~idx ~loc
  | Event.Barrier_arrive { tid; base; idx; generation; loc } ->
      put_sync s tag_barrier_arrive ~tid ~base ~idx ~loc;
      put_signed s generation
  | Event.Barrier_pass { tid; base; idx; generation; loc } ->
      put_sync s tag_barrier_pass ~tid ~base ~idx ~loc;
      put_signed s generation
  | Event.Sem_post_ev { tid; base; idx; loc } ->
      put_sync s tag_sem_post ~tid ~base ~idx ~loc
  | Event.Sem_acquire { tid; base; idx; loc } ->
      put_sync s tag_sem_acquire ~tid ~base ~idx ~loc
  | Event.Spawn_ev { parent; child; loc } ->
      put_u8 s tag_spawn;
      put_signed s parent;
      put_signed s child;
      put_loc s loc
  | Event.Join_return { tid; target; loc } ->
      put_u8 s tag_join_return;
      put_signed s tid;
      put_signed s target;
      put_loc s loc
  | Event.Thread_start { tid } ->
      put_u8 s tag_thread_start;
      put_signed s tid
  | Event.Thread_exit { tid } ->
      put_u8 s tag_thread_exit;
      put_signed s tid
  | Event.Spin_enter { tid; loop_id; ctx } ->
      put_u8 s tag_spin_enter;
      put_signed s tid;
      put_signed s loop_id;
      put_signed s ctx
  | Event.Spin_exit { tid; loop_id; ctx } ->
      put_u8 s tag_spin_exit;
      put_signed s tid;
      put_signed s loop_id;
      put_signed s ctx);
  s.n_events <- s.n_events + 1

let sink_observer s = Observer.of_fn (fun ev -> encode_event s ev)
let sink_events s = s.n_events
let sink_size s = s.len
let sink_contents s = Bytes.sub_string s.buf 0 s.len

(* ------------------------------------------------------------------ *)
(* Hashing: FNV-1a-ish, matching [Trace.hash]'s mixing constants       *)

let hash_bytes str =
  let h = ref 0x811c9dc5 in
  for i = 0 to String.length str - 1 do
    h := (!h * 16777619) lxor Char.code (String.unsafe_get str i)
  done;
  !h land max_int

(* ------------------------------------------------------------------ *)
(* Sections and file assembly                                         *)

type section = {
  s_seed : int;
  s_n_events : int;
  s_events : string;
  s_hash : int;
  s_trailer : trailer;
}

let section_of_sink s ~seed trailer =
  let events = Bytes.sub_string s.buf 0 s.len in
  {
    s_seed = seed;
    s_n_events = s.n_events;
    s_events = events;
    s_hash = hash_bytes events;
    s_trailer = trailer;
  }

let cancelled_trailer =
  { t_outcome = Cancelled; t_steps = 0; t_check_failures = [] }

let cancelled_section ~seed =
  {
    s_seed = seed;
    s_n_events = 0;
    s_events = "";
    s_hash = hash_bytes "";
    s_trailer = cancelled_trailer;
  }

(* Assembly reuses the sink buffer machinery without its tables. *)
let out_lpstr = put_lpstr
let out_varint = put_varint

let put_raw_loc o (l : loc) =
  out_lpstr o l.lfunc;
  out_lpstr o l.lblk;
  put_signed o l.lidx

let put_outcome o = function
  | Finished -> put_u8 o 0
  | Deadlock tids ->
      put_u8 o 1;
      out_varint o (List.length tids);
      List.iter (put_signed o) tids
  | Fuel_exhausted -> put_u8 o 2
  | Livelock sites ->
      put_u8 o 3;
      out_varint o (List.length sites);
      List.iter
        (fun w ->
          put_signed o w.w_tid;
          put_signed o w.w_loop;
          put_raw_loc o w.w_loc;
          out_varint o (List.length w.w_bases);
          List.iter (out_lpstr o) w.w_bases)
        sites
  | Fault { ftid; floc; msg } ->
      put_u8 o 4;
      put_signed o ftid;
      put_raw_loc o floc;
      out_lpstr o msg
  | Crashed (l, msg) ->
      put_u8 o 5;
      (match l with
      | None -> put_u8 o 0
      | Some l ->
          put_u8 o 1;
          put_raw_loc o l);
      out_lpstr o msg
  | Cancelled -> put_u8 o 6

let put_trailer o t =
  put_outcome o t.t_outcome;
  out_varint o t.t_steps;
  out_varint o (List.length t.t_check_failures);
  List.iter
    (fun (l, msg) ->
      put_raw_loc o l;
      out_lpstr o msg)
    t.t_check_failures

let section_tag = 0xA5
let end_tag = 0xEE
let kind_recorded = 0
let kind_cancelled = 1

let assemble header sections =
  let o = sink ~capacity:65536 () in
  ensure o (String.length magic);
  Bytes.blit_string magic 0 o.buf o.len (String.length magic);
  o.len <- o.len + String.length magic;
  out_varint o format_version;
  out_lpstr o header.h_digest;
  out_lpstr o header.h_mode;
  out_lpstr o header.h_options;
  out_lpstr o header.h_source;
  out_lpstr o header.h_program;
  List.iter
    (fun sec ->
      put_u8 o section_tag;
      out_varint o sec.s_seed;
      if sec.s_trailer.t_outcome = Cancelled then put_u8 o kind_cancelled
      else begin
        put_u8 o kind_recorded;
        out_varint o sec.s_n_events;
        out_varint o (String.length sec.s_events);
        ensure o (String.length sec.s_events);
        Bytes.blit_string sec.s_events 0 o.buf o.len
          (String.length sec.s_events);
        o.len <- o.len + String.length sec.s_events;
        out_varint o sec.s_hash;
        put_trailer o sec.s_trailer
      end)
    sections;
  put_u8 o end_tag;
  Bytes.sub_string o.buf 0 o.len

(* ------------------------------------------------------------------ *)
(* Reading                                                            *)

exception Err of error

type reader = {
  data : string;
  mutable pos : int;
  limit : int;
  mutable rstrs : string array;
  mutable rn_strs : int;
  mutable rbases : string option array;
      (* read/write base strings keyed by dense base id, mirroring the
         sink's first-occurrence definitions *)
}

let reader ?(off = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> String.length data in
  {
    data;
    pos = off;
    limit;
    rstrs = Array.make 64 "";
    rn_strs = 0;
    rbases = Array.make 64 None;
  }

let truncated what = raise (Err (Truncated what))
let corrupt r what = raise (Err (Corrupt { at = r.pos; what }))

let get_u8 r what =
  if r.pos >= r.limit then truncated what;
  let b = Char.code (String.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  b

let get_varint r what =
  let rec go shift acc =
    if shift > 62 then corrupt r ("overlong varint in " ^ what);
    let b = get_u8 r what in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_signed r what = unzigzag (get_varint r what)

let get_len r what =
  let n = get_varint r what in
  if n < 0 then corrupt r ("negative length in " ^ what);
  n

let get_lpstr r what =
  let n = get_len r what in
  if n > max_lpstr then raise (Err (Limit (what ^ " string length")));
  if r.pos + n > r.limit then truncated what;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* Length-prefixed bytes bounded only by the reader's window — the serve
   wire carries whole programs and traces, whose sizes are already policed
   by the frame cap, so [max_lpstr] would be the wrong ceiling. *)
let get_lpbytes r what =
  let n = get_len r what in
  if r.pos + n > r.limit then truncated what;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let reader_pos r = r.pos
let reader_left r = r.limit - r.pos

let get_strref r what =
  let k = get_len r what in
  if k = 0 then begin
    let s = get_lpstr r what in
    if r.rn_strs = Array.length r.rstrs then begin
      let a = Array.make (2 * r.rn_strs) "" in
      Array.blit r.rstrs 0 a 0 r.rn_strs;
      r.rstrs <- a
    end;
    r.rstrs.(r.rn_strs) <- s;
    r.rn_strs <- r.rn_strs + 1;
    s
  end
  else if k - 1 >= r.rn_strs then corrupt r ("string reference out of range in " ^ what)
  else r.rstrs.(k - 1)

let get_loc r what =
  let lfunc = get_strref r what in
  let lblk = get_strref r what in
  let lidx = get_signed r what in
  { lfunc; lblk; lidx }

(* Mirrors [put_baseref]: [k = 0] escapes to an explicit string and id;
   [k > 0] is base id [k-1], with the string defined inline the first
   time this reader meets the id. *)
let get_baseref r what =
  let k = get_len r what in
  if k = 0 then begin
    let base = get_strref r what in
    let base_id = get_signed r what in
    (base, base_id)
  end
  else begin
    let id = k - 1 in
    if id >= max_base_id then raise (Err (Limit (what ^ " base id")));
    if id >= Array.length r.rbases then begin
      let cap = ref (2 * Array.length r.rbases) in
      while id >= !cap do
        cap := !cap * 2
      done;
      let a = Array.make !cap None in
      Array.blit r.rbases 0 a 0 (Array.length r.rbases);
      r.rbases <- a
    end;
    match r.rbases.(id) with
    | Some b -> (b, id)
    | None ->
        let b = get_lpstr r what in
        r.rbases.(id) <- Some b;
        (b, id)
  end

let get_raw_loc r what =
  let lfunc = get_lpstr r what in
  let lblk = get_lpstr r what in
  let lidx = get_signed r what in
  { lfunc; lblk; lidx }

let get_list r what n_max f =
  let n = get_len r what in
  if n > n_max then raise (Err (Limit (what ^ " list length")));
  List.init n (fun _ -> f ())

(* ------------------------------------------------------------------ *)
(* Event decoding                                                     *)

let get_sync r what =
  let tid = get_signed r what in
  let base = get_strref r what in
  let idx = get_signed r what in
  let loc = get_loc r what in
  (tid, base, idx, loc)

let decode_one r : Event.t =
  let tag = get_u8 r "event tag" in
  match tag with
  | t when t = tag_read_plain || t = tag_read_atomic ->
      let what = "read event" in
      let tid = get_signed r what in
      let base, base_id = get_baseref r what in
      let idx = get_signed r what in
      let value = get_signed r what in
      let loc = get_loc r what in
      let spin =
        get_list r what max_list (fun () ->
            let l = get_signed r what in
            let c = get_signed r what in
            (l, c))
      in
      Event.Read
        {
          tid;
          base;
          base_id;
          idx;
          value;
          loc;
          kind = (if tag = tag_read_plain then Event.Plain else Event.Atomic);
          spin;
        }
  | t when t = tag_write_plain || t = tag_write_atomic ->
      let what = "write event" in
      let tid = get_signed r what in
      let base, base_id = get_baseref r what in
      let idx = get_signed r what in
      let value = get_signed r what in
      let loc = get_loc r what in
      Event.Write
        {
          tid;
          base;
          base_id;
          idx;
          value;
          loc;
          kind = (if tag = tag_write_plain then Event.Plain else Event.Atomic);
        }
  | t when t = tag_lock_acq ->
      let tid, base, idx, loc = get_sync r "lock event" in
      Event.Lock_acq { tid; base; idx; loc }
  | t when t = tag_lock_rel ->
      let tid, base, idx, loc = get_sync r "unlock event" in
      Event.Lock_rel { tid; base; idx; loc }
  | t when t = tag_cv_signal ->
      let tid, base, idx, loc = get_sync r "signal event" in
      let flags = get_u8 r "signal flags" in
      if flags land lnot 3 <> 0 then corrupt r "signal flags";
      Event.Cv_signal
        {
          tid;
          base;
          idx;
          loc;
          broadcast = flags land 1 <> 0;
          had_waiter = flags land 2 <> 0;
        }
  | t when t = tag_cv_wait_begin ->
      let tid, base, idx, loc = get_sync r "wait-begin event" in
      Event.Cv_wait_begin { tid; base; idx; loc }
  | t when t = tag_cv_wait_return ->
      let tid, base, idx, loc = get_sync r "wait-return event" in
      Event.Cv_wait_return { tid; base; idx; loc }
  | t when t = tag_barrier_arrive ->
      let tid, base, idx, loc = get_sync r "barrier-arrive event" in
      let generation = get_signed r "barrier generation" in
      Event.Barrier_arrive { tid; base; idx; generation; loc }
  | t when t = tag_barrier_pass ->
      let tid, base, idx, loc = get_sync r "barrier-pass event" in
      let generation = get_signed r "barrier generation" in
      Event.Barrier_pass { tid; base; idx; generation; loc }
  | t when t = tag_sem_post ->
      let tid, base, idx, loc = get_sync r "sem-post event" in
      Event.Sem_post_ev { tid; base; idx; loc }
  | t when t = tag_sem_acquire ->
      let tid, base, idx, loc = get_sync r "sem-acquire event" in
      Event.Sem_acquire { tid; base; idx; loc }
  | t when t = tag_spawn ->
      let parent = get_signed r "spawn event" in
      let child = get_signed r "spawn event" in
      let loc = get_loc r "spawn event" in
      Event.Spawn_ev { parent; child; loc }
  | t when t = tag_join_return ->
      let tid = get_signed r "join event" in
      let target = get_signed r "join event" in
      let loc = get_loc r "join event" in
      Event.Join_return { tid; target; loc }
  | t when t = tag_thread_start ->
      Event.Thread_start { tid = get_signed r "thread-start event" }
  | t when t = tag_thread_exit ->
      Event.Thread_exit { tid = get_signed r "thread-exit event" }
  | t when t = tag_spin_enter ->
      let tid = get_signed r "spin-enter event" in
      let loop_id = get_signed r "spin-enter event" in
      let ctx = get_signed r "spin-enter event" in
      Event.Spin_enter { tid; loop_id; ctx }
  | t when t = tag_spin_exit ->
      let tid = get_signed r "spin-exit event" in
      let loop_id = get_signed r "spin-exit event" in
      let ctx = get_signed r "spin-exit event" in
      Event.Spin_exit { tid; loop_id; ctx }
  | t -> corrupt r (Printf.sprintf "unknown event tag %d" t)

let decode_events sec f =
  let r = reader sec.s_events in
  match
    let n = ref 0 in
    while r.pos < r.limit do
      f (decode_one r);
      incr n
    done;
    !n
  with
  | n ->
      if n <> sec.s_n_events then
        Error
          (Corrupt
             {
               at = r.pos;
               what =
                 Printf.sprintf "section declares %d events, body holds %d"
                   sec.s_n_events n;
             })
      else Ok ()
  | exception Err e -> Error e

let decode_events_list sec =
  let acc = ref [] in
  match decode_events sec (fun ev -> acc := ev :: !acc) with
  | Ok () -> Ok (List.rev !acc)
  | Error e -> Error e

let encode_events events =
  let s = sink () in
  List.iter (encode_event s) events;
  let bytes = Bytes.sub_string s.buf 0 s.len in
  (bytes, hash_bytes bytes)

(* ------------------------------------------------------------------ *)
(* File reading                                                       *)

let get_outcome r =
  match get_u8 r "outcome" with
  | 0 -> Finished
  | 1 ->
      Deadlock (get_list r "deadlock tids" max_list (fun () -> get_signed r "deadlock tid"))
  | 2 -> Fuel_exhausted
  | 3 ->
      Livelock
        (get_list r "livelock sites" max_list (fun () ->
             let w_tid = get_signed r "livelock site" in
             let w_loop = get_signed r "livelock site" in
             let w_loc = get_raw_loc r "livelock site" in
             let w_bases =
               get_list r "livelock bases" max_list (fun () ->
                   get_lpstr r "livelock base")
             in
             { w_tid; w_loop; w_loc; w_bases }))
  | 4 ->
      let ftid = get_signed r "fault outcome" in
      let floc = get_raw_loc r "fault outcome" in
      let msg = get_lpstr r "fault outcome" in
      Fault { ftid; floc; msg }
  | 5 ->
      let l =
        match get_u8 r "crash outcome" with
        | 0 -> None
        | 1 -> Some (get_raw_loc r "crash outcome")
        | _ -> corrupt r "crash outcome loc flag"
      in
      Crashed (l, get_lpstr r "crash outcome")
  | 6 -> Cancelled
  | t -> corrupt r (Printf.sprintf "unknown outcome tag %d" t)

let get_trailer r =
  let t_outcome = get_outcome r in
  let t_steps = get_len r "trailer steps" in
  let t_check_failures =
    get_list r "check failures" max_list (fun () ->
        let l = get_raw_loc r "check failure" in
        let msg = get_lpstr r "check failure" in
        (l, msg))
  in
  { t_outcome; t_steps; t_check_failures }

let get_header r =
  if r.limit - r.pos < String.length magic then truncated "magic";
  if String.sub r.data r.pos (String.length magic) <> magic then
    raise (Err Bad_magic);
  r.pos <- r.pos + String.length magic;
  let v = get_varint r "version" in
  if v <> format_version then raise (Err (Bad_version v));
  let h_digest = get_lpstr r "header digest" in
  let h_mode = get_lpstr r "header mode" in
  let h_options = get_lpstr r "header options" in
  let h_source = get_lpstr r "header source" in
  let h_program = get_lpstr r "header program" in
  { h_digest; h_mode; h_options; h_source; h_program }

let read_header data =
  match get_header (reader data) with
  | h -> Ok h
  | exception Err e -> Error e

type summary = {
  y_seed : int;
  y_n_events : int;
  y_bytes : int;
  y_outcome : outcome;
  y_steps : int;
}

(* One pass over the section framing.  [body] receives the event-byte
   extent and the already-read counters and decides what to keep — the
   full section (with hash check) or just a summary (skipping the
   bytes). *)
let read_structure data ~body =
  let r = reader data in
  match
    let header = get_header r in
    let acc = ref [] in
    let n = ref 0 in
    let rec loop () =
      match get_u8 r "section tag" with
      | t when t = end_tag ->
          if r.pos <> r.limit then corrupt r "trailing bytes after end marker"
      | t when t = section_tag ->
          incr n;
          if !n > max_sections then raise (Err (Limit "section count"));
          let seed = get_varint r "section seed" in
          (match get_u8 r "section kind" with
          | k when k = kind_cancelled ->
              acc :=
                body ~seed ~n_events:0 ~off:r.pos ~len:0 ~hash:(hash_bytes "")
                  ~trailer:cancelled_trailer
                :: !acc
          | k when k = kind_recorded ->
              let n_events = get_len r "section event count" in
              let len = get_len r "section event bytes" in
              if r.pos + len > r.limit then truncated "section event bytes";
              let off = r.pos in
              r.pos <- r.pos + len;
              let hash = get_len r "section hash" in
              let trailer = get_trailer r in
              if trailer.t_outcome = Cancelled then
                corrupt r "recorded section with cancelled outcome";
              acc := body ~seed ~n_events ~off ~len ~hash ~trailer :: !acc
          | k -> corrupt r (Printf.sprintf "unknown section kind %d" k));
          loop ()
      | t -> corrupt r (Printf.sprintf "unknown section tag 0x%02x" t)
    in
    loop ();
    (header, List.rev !acc)
  with
  | res -> Ok res
  | exception Err e -> Error e

let read_info data =
  read_structure data ~body:(fun ~seed ~n_events ~off:_ ~len ~hash:_ ~trailer ->
      {
        y_seed = seed;
        y_n_events = n_events;
        y_bytes = len;
        y_outcome = trailer.t_outcome;
        y_steps = trailer.t_steps;
      })

let read_sections data =
  match
    read_structure data ~body:(fun ~seed ~n_events ~off ~len ~hash ~trailer ->
        let events = String.sub data off len in
        let actual = hash_bytes events in
        if actual <> hash then
          raise
            (Err
               (Corrupt
                  {
                    at = off;
                    what =
                      Printf.sprintf
                        "seed %d event bytes fail their integrity hash \
                         (recorded %d, computed %d)"
                        seed hash actual;
                  }));
        {
          s_seed = seed;
          s_n_events = n_events;
          s_events = events;
          s_hash = hash;
          s_trailer = trailer;
        })
  with
  | Ok _ as ok -> ok
  | Error _ as e -> e
