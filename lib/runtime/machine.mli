(** The interpreting virtual machine.

    Executes a TIR program as a set of interleaved threads, one instruction
    per scheduler step, under sequential consistency.  Every memory access
    and synchronization operation is reported to the configured observer as
    an {!Event.t}; race detectors are pure observers and never influence
    execution.

    When spin instrumentation metadata is supplied, the machine tracks
    active spinning-read-loop contexts per thread (entering a marked loop
    header pushes a context; leaving the loop's blocks or returning from
    the function pops it, emitting [Spin_exit]), and tags condition loads
    with the contexts they belong to — the runtime half of the paper's
    two-phase method. *)

open Arde_tir.Types

type config = {
  policy : Sched.policy;
  seed : int;
  fuel : int; (* maximum machine steps before giving up *)
  instrument : Arde_cfg.Instrument.t option;
  spurious_wakeups : bool; (* failure injection for condition variables *)
  observer : Observer.t;
}

val default_config : config
(** [Chunked 6] scheduling, seed 1, 2,000,000 fuel, no instrumentation, no
    spurious wakeups, events discarded.

    Leaving [observer] as {!Observer.none} (physical equality) arms the
    quiet fast path: the machine skips event construction entirely,
    making steady-state steps allocation-free.  Results are identical
    either way — only the observer stream disappears.  [Observer.tee]
    preserves quietness, so composing optional pipeline stages never
    disarms it by accident. *)

exception Fault_exn of loc * string
(** The in-band fault signal.  Raised by the interpreter on a program
    error (bad index, unlock by non-owner, division by zero, …) and caught
    by the top-level loop, which converts it into a {!Fault} outcome.
    Observers may raise it too — that is the supported channel for
    deterministic fault injection (see [Arde_chaos]): a [Fault_exn] raised
    mid-step is attributed to the thread executing that step. *)

exception Internal_violation of string
(** A broken machine invariant — a bug in the machine or in a caller
    poking at its state, never a property of the interpreted program
    (dead thread id, empty frame stack, waiter queues out of sync, missing
    entry function).  Escapes {!run} so that harnesses can convert it into
    a structured "detector crashed" outcome instead of dying on a bare
    [Invalid_argument]. *)

type spin_site = {
  sp_tid : int; (* the spinning thread *)
  sp_loop : int; (* instrumentation loop id *)
  sp_loc : loc; (* the loop header block *)
  sp_bases : string list; (* condition variables the loop reads *)
}
(** Where a thread was spinning when fuel ran out. *)

type outcome =
  | Finished
  | Deadlock of int list (* the blocked thread ids *)
  | Fuel_exhausted
  | Livelock of spin_site list
      (* fuel ran out while these threads sat inside instrumented spinning
         read loops whose counterpart write never arrived; only produced
         when spin instrumentation is active *)
  | Fault of { ftid : int; floc : loc; msg : string }

type result = {
  outcome : outcome;
  steps : int;
  threads_spawned : int;
  check_failures : (loc * string) list;
  memory : (string, int array) Hashtbl.t; (* final global memory *)
  thread_steps : int array; (* instructions executed, indexed by tid *)
  context_switches : int; (* scheduler hand-offs between threads *)
}

type compiled
(** A program preprocessed for execution (blocks as arrays, label indices
    resolved).  Compile once, run under many seeds. *)

val compile : program -> compiled
(** @raise Invalid_argument if the program does not validate. *)

val intern : compiled -> Arde_tir.Intern.t
(** The base-interning table built at compile time.  Events produced by
    {!run} carry [base_id]s drawn from it; detectors use it to size flat
    shadow tables up front. *)

type spin_cache = {
  sc_header : int array array; (* fid -> blk -> loop id, or -1 *)
  sc_inloop : int array array array; (* fid -> blk -> containing loop ids *)
  sc_tags : int array array array array;
      (* fid -> blk -> pc -> condition-load loop ids *)
}
(** The per-instrumentation spin cache as plain int arrays — a pure
    function of (compiled program, instrumentation), so it can be
    serialized and rebuilt in another process. *)

val export_spin_cache : compiled -> Arde_cfg.Instrument.t -> spin_cache
(** The spin cache for [inst], building it now if no run has yet.  The
    build is memoized on the compiled program, so a subsequent {!run}
    with the same instrumentation reuses it — exporting before the first
    run moves the build cost, it does not add to it. *)

val import_spin_cache :
  compiled -> Arde_cfg.Instrument.t -> spin_cache -> (unit, string) Stdlib.result
(** Install a cache deserialized elsewhere, after validating its shape
    against this compiled program (function/block/instruction counts).
    [Error] means the cache was built for a different program; the
    machine will simply rebuild on first run. *)

val run : config -> compiled -> result

val run_program : config -> program -> result
(** [compile] + [run]. *)

val read_global : result -> string -> int -> int
(** Read a cell of the final memory.  @raise Not_found for unknown
    globals. *)

val pp_outcome : Format.formatter -> outcome -> unit
