(** First-class event observers — the one composition surface.

    An observer is what the machine's event stream flows into: a race
    detection engine, a condition-variable checker, a recording
    {!Trace_codec.sink}, an in-memory {!Trace} collector, a chaos
    injector.  The type is a plain [Event.t -> unit] so attaching one
    costs nothing on the emit path, but all {e composition} goes through
    this module: [tee]/[tee_all] are quiet-preserving (composing with
    {!none} is the identity, so a pipeline stage that opts out never
    costs an indirection), and {!none} is the canonical discarding
    observer whose physical identity arms the machine's quiet fast path
    (events are then never constructed at all — see
    {!Machine.default_config}).

    Producers ({!Trace.observer}, [Engine.observer], [Cv_checker.observer],
    {!Trace_codec.sink_observer}) return values of this type; raw
    closures should only be {e created} here or by those producers, and
    only {e combined} here. *)

type t = Event.t -> unit

val none : t
(** The canonical discarding observer.  Physically comparing against
    [none] is the supported way to detect "nobody is listening" — the
    machine does exactly that to skip event construction entirely. *)

val is_none : t -> bool
(** Physical test against {!none}. *)

val of_fn : (Event.t -> unit) -> t
(** Adopt a raw closure (the identity; exists so intent is greppable). *)

val emit : t -> Event.t -> unit
(** Feed one event. *)

val tee : t -> t -> t
(** [tee a b] feeds [a] then [b].  Composing with {!none} returns the
    other observer unchanged (physically), so quietness is preserved. *)

val tee_all : t list -> t
(** Left-to-right fan-out; [none] elements are dropped.  [tee_all []] is
    {!none}. *)

val counting : int ref -> t
(** Increment the cell per event (test and bench helper). *)
