(** The observation stream the machine feeds to race detectors.

    This is the moral equivalent of what a Valgrind tool sees: every memory
    access with its code location, every native synchronization operation,
    thread lifecycle edges, and — when spin instrumentation is active —
    loop-context enter/exit markers plus a [spin] tag on condition loads.

    Events are plain data; detectors must not assume anything about timing
    beyond stream order, which is the machine's global interleaving
    order. *)

open Arde_tir.Types

type access_kind = Plain | Atomic

type t =
  | Read of {
      tid : int;
      base : string;
      base_id : int;
          (* dense interned id of [base] ({!Arde_tir.Intern}), assigned at
             machine compile time; [-1] when the producer has no intern
             table (hand-built events).  Detectors may key flat shadow
             state by it instead of hashing [(base, idx)]. *)
      idx : int;
      value : int;
      loc : loc;
      kind : access_kind;
      spin : (int * int) list;
          (* (loop id, context serial) for every active spin context this
             load is a marked condition load of *)
    }
  | Write of {
      tid : int;
      base : string;
      base_id : int;
      idx : int;
      value : int;
      loc : loc;
      kind : access_kind;
    }
  | Lock_acq of { tid : int; base : string; idx : int; loc : loc }
  | Lock_rel of { tid : int; base : string; idx : int; loc : loc }
  | Cv_signal of {
      tid : int;
      base : string;
      idx : int;
      loc : loc;
      broadcast : bool;
      had_waiter : bool;
          (* was any thread waiting when the signal fired?  A signal into
             the void is a potential lost signal. *)
    }
  | Cv_wait_begin of { tid : int; base : string; idx : int; loc : loc }
  | Cv_wait_return of { tid : int; base : string; idx : int; loc : loc }
  | Barrier_arrive of {
      tid : int;
      base : string;
      idx : int;
      generation : int;
      loc : loc;
    }
  | Barrier_pass of {
      tid : int;
      base : string;
      idx : int;
      generation : int;
      loc : loc;
    }
  | Sem_post_ev of { tid : int; base : string; idx : int; loc : loc }
  | Sem_acquire of { tid : int; base : string; idx : int; loc : loc }
  | Spawn_ev of { parent : int; child : int; loc : loc }
  | Join_return of { tid : int; target : int; loc : loc }
  | Thread_start of { tid : int }
  | Thread_exit of { tid : int }
  | Spin_enter of { tid : int; loop_id : int; ctx : int }
  | Spin_exit of { tid : int; loop_id : int; ctx : int }

val tid_of : t -> int
val pp : Format.formatter -> t -> unit
