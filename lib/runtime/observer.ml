type t = Event.t -> unit

(* A single physical closure: the machine (and [tee]) compare against it
   with [==], so it must never be re-created. *)
let none : t = fun _ -> ()
let is_none (o : t) = o == none
let of_fn (f : Event.t -> unit) : t = f
let emit (o : t) ev = o ev

let tee (a : t) (b : t) : t =
  if a == none then b
  else if b == none then a
  else
    fun ev ->
      a ev;
      b ev

let tee_all os = List.fold_left tee none os

let counting cell : t = fun _ -> incr cell
