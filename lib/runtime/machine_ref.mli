(** The PR-3-era interpreting machine, frozen verbatim — the differential
    oracle for {!Machine}.

    Shares {!Machine.config}, {!Machine.result} and {!Machine.Fault_exn},
    so observers, chaos injectors and drivers run unchanged against either
    machine.  For any (program, config) the two machines must produce the
    same result and the same event sequence; [test_machine_diff] and
    [bench machine] enforce this.  Never optimize this module. *)

open Arde_tir.Types

type compiled
(** The frozen pre-resolution form (blocks as arrays, label indices in a
    hashtable, string-keyed register files). *)

val compile : program -> compiled
(** @raise Invalid_argument if the program does not validate. *)

val intern : compiled -> Arde_tir.Intern.t

val run : Machine.config -> compiled -> Machine.result

val run_program : Machine.config -> program -> Machine.result
(** [compile] + [run]. *)
