open Arde_tir.Types

type access_kind = Plain | Atomic

type t =
  | Read of {
      tid : int;
      base : string;
      base_id : int;
      idx : int;
      value : int;
      loc : loc;
      kind : access_kind;
      spin : (int * int) list;
    }
  | Write of {
      tid : int;
      base : string;
      base_id : int;
      idx : int;
      value : int;
      loc : loc;
      kind : access_kind;
    }
  | Lock_acq of { tid : int; base : string; idx : int; loc : loc }
  | Lock_rel of { tid : int; base : string; idx : int; loc : loc }
  | Cv_signal of {
      tid : int;
      base : string;
      idx : int;
      loc : loc;
      broadcast : bool;
      had_waiter : bool;
          (* was any thread waiting when the signal fired?  A signal into
             the void is a potential lost signal. *)
    }
  | Cv_wait_begin of { tid : int; base : string; idx : int; loc : loc }
  | Cv_wait_return of { tid : int; base : string; idx : int; loc : loc }
  | Barrier_arrive of {
      tid : int;
      base : string;
      idx : int;
      generation : int;
      loc : loc;
    }
  | Barrier_pass of {
      tid : int;
      base : string;
      idx : int;
      generation : int;
      loc : loc;
    }
  | Sem_post_ev of { tid : int; base : string; idx : int; loc : loc }
  | Sem_acquire of { tid : int; base : string; idx : int; loc : loc }
  | Spawn_ev of { parent : int; child : int; loc : loc }
  | Join_return of { tid : int; target : int; loc : loc }
  | Thread_start of { tid : int }
  | Thread_exit of { tid : int }
  | Spin_enter of { tid : int; loop_id : int; ctx : int }
  | Spin_exit of { tid : int; loop_id : int; ctx : int }

let tid_of = function
  | Read { tid; _ }
  | Write { tid; _ }
  | Lock_acq { tid; _ }
  | Lock_rel { tid; _ }
  | Cv_signal { tid; _ }
  | Cv_wait_begin { tid; _ }
  | Cv_wait_return { tid; _ }
  | Barrier_arrive { tid; _ }
  | Barrier_pass { tid; _ }
  | Sem_post_ev { tid; _ }
  | Sem_acquire { tid; _ }
  | Join_return { tid; _ }
  | Thread_start { tid }
  | Thread_exit { tid }
  | Spin_enter { tid; _ }
  | Spin_exit { tid; _ } ->
      tid
  | Spawn_ev { parent; _ } -> parent

let pp_loc = Arde_tir.Pretty.loc

let pp ppf = function
  | Read { tid; base; idx; value; loc; kind; spin; _ } ->
      Format.fprintf ppf "T%d %s-read %s[%d]=%d @%a%s" tid
        (match kind with Plain -> "plain" | Atomic -> "atomic")
        base idx value pp_loc loc
        (if spin = [] then ""
         else
           " spin:"
           ^ String.concat ","
               (List.map (fun (l, c) -> Printf.sprintf "%d/%d" l c) spin))
  | Write { tid; base; idx; value; loc; kind; _ } ->
      Format.fprintf ppf "T%d %s-write %s[%d]=%d @%a" tid
        (match kind with Plain -> "plain" | Atomic -> "atomic")
        base idx value pp_loc loc
  | Lock_acq { tid; base; idx; loc } ->
      Format.fprintf ppf "T%d lock %s[%d] @%a" tid base idx pp_loc loc
  | Lock_rel { tid; base; idx; loc } ->
      Format.fprintf ppf "T%d unlock %s[%d] @%a" tid base idx pp_loc loc
  | Cv_signal { tid; base; idx; loc; broadcast; had_waiter } ->
      Format.fprintf ppf "T%d %s %s[%d]%s @%a" tid
        (if broadcast then "broadcast" else "signal")
        base idx
        (if had_waiter then "" else " (no waiter)")
        pp_loc loc
  | Cv_wait_begin { tid; base; idx; loc } ->
      Format.fprintf ppf "T%d wait-begin %s[%d] @%a" tid base idx pp_loc loc
  | Cv_wait_return { tid; base; idx; loc } ->
      Format.fprintf ppf "T%d wait-return %s[%d] @%a" tid base idx pp_loc loc
  | Barrier_arrive { tid; base; idx; generation; loc } ->
      Format.fprintf ppf "T%d barrier-arrive %s[%d] gen=%d @%a" tid base idx
        generation pp_loc loc
  | Barrier_pass { tid; base; idx; generation; loc } ->
      Format.fprintf ppf "T%d barrier-pass %s[%d] gen=%d @%a" tid base idx
        generation pp_loc loc
  | Sem_post_ev { tid; base; idx; loc } ->
      Format.fprintf ppf "T%d sem-post %s[%d] @%a" tid base idx pp_loc loc
  | Sem_acquire { tid; base; idx; loc } ->
      Format.fprintf ppf "T%d sem-acquire %s[%d] @%a" tid base idx pp_loc loc
  | Spawn_ev { parent; child; loc } ->
      Format.fprintf ppf "T%d spawn T%d @%a" parent child pp_loc loc
  | Join_return { tid; target; loc } ->
      Format.fprintf ppf "T%d joined T%d @%a" tid target pp_loc loc
  | Thread_start { tid } -> Format.fprintf ppf "T%d start" tid
  | Thread_exit { tid } -> Format.fprintf ppf "T%d exit" tid
  | Spin_enter { tid; loop_id; ctx } ->
      Format.fprintf ppf "T%d spin-enter loop=%d ctx=%d" tid loop_id ctx
  | Spin_exit { tid; loop_id; ctx } ->
      Format.fprintf ppf "T%d spin-exit loop=%d ctx=%d" tid loop_id ctx
