(* The PR-3-era interpreting machine, frozen verbatim.

   This is the differential oracle for the optimized {!Machine}: same
   [config] in, same [result] and — crucially — the same *event sequence*
   out, for every program, policy, seed and perturbation.  It exists for
   the same reason {!Arde_detect.Engine_ref} does: wall-clock baselines do
   not survive hardware changes, but an executable reference does.  The
   machine benchmark runs both implementations in the same process and
   gates on their ratio, and [test_machine_diff] replays the golden
   fixture enumeration through both.

   Apart from this prologue, the only edits relative to the frozen
   [machine.ml] are: the public types and exceptions are aliases of
   {!Machine}'s (so observers, chaos injectors and drivers interoperate
   with either machine unchanged), and the list-based scheduler this
   machine was written against is embedded as [Sched_ref] because {!Sched}
   itself moved to a reusable runnable buffer.  Do not optimize this
   file. *)

open Arde_tir.Types
module Instrument = Arde_cfg.Instrument

type config = Machine.config = {
  policy : Sched.policy;
  seed : int;
  fuel : int;
  instrument : Instrument.t option;
  spurious_wakeups : bool;
  observer : Event.t -> unit;
}

type spin_site = Machine.spin_site = {
  sp_tid : int;
  sp_loop : int;
  sp_loc : loc;
  sp_bases : string list;
}

type outcome = Machine.outcome =
  | Finished
  | Deadlock of int list
  | Fuel_exhausted
  | Livelock of spin_site list
  | Fault of { ftid : int; floc : loc; msg : string }

type result = Machine.result = {
  outcome : outcome;
  steps : int;
  threads_spawned : int;
  check_failures : (loc * string) list;
  memory : (string, int array) Hashtbl.t;
  thread_steps : int array; (* instructions executed per thread *)
  context_switches : int;
}

exception Fault_exn = Machine.Fault_exn
exception Internal_violation = Machine.Internal_violation

(* The list-based scheduler the frozen machine was written against,
   verbatim from the PR-3-era [sched.ml]. *)
module Sched_ref = struct
  type t = {
    policy : Sched.policy;
    rng : Arde_util.Prng.t;
    mutable current : int;
    mutable burst : int; (* remaining instructions before a forced re-pick *)
  }

  let create policy ~seed =
    { policy; rng = Arde_util.Prng.create seed; current = -1; burst = 0 }

  let force_switch t = t.burst <- 0

  let fresh_burst t mean = 1 + Arde_util.Prng.int t.rng (2 * mean)

  let pick t ~runnable =
    match runnable with
    | [] -> invalid_arg "Sched.pick: no runnable thread"
    | [ only ] ->
        t.current <- only;
        only
    | _ -> (
        match t.policy with
        | Sched.Round_robin quantum ->
            let next () =
              match List.find_opt (fun x -> x > t.current) runnable with
              | Some x -> x
              | None -> List.hd runnable
            in
            if t.burst > 0 && List.mem t.current runnable then begin
              t.burst <- t.burst - 1;
              t.current
            end
            else begin
              t.current <- next ();
              t.burst <- quantum - 1;
              t.current
            end
        | Sched.Uniform ->
            t.current <- Arde_util.Prng.pick t.rng (Array.of_list runnable);
            t.current
        | Sched.Chunked mean ->
            if t.burst > 0 && List.mem t.current runnable then begin
              t.burst <- t.burst - 1;
              t.current
            end
            else begin
              t.current <- Arde_util.Prng.pick t.rng (Array.of_list runnable);
              t.burst <- fresh_burst t mean;
              t.current
            end)
end

(* ------------------------------------------------------------------ *)
(* Compiled representation                                            *)

type cblock = { clbl : label; cins : instr array; cterm : term }

type cfunc = {
  csrc : func;
  cblocks : cblock array;
  cindex : (label, int) Hashtbl.t;
}

type compiled = {
  prog : program;
  cfuncs : (string, cfunc) Hashtbl.t;
  centry : string;
  cintern : Arde_tir.Intern.t;
  td_id : int; (* interned id of [thread_done_global] *)
  td_declared : bool;
}

let compile prog =
  Arde_tir.Validate.check_exn prog;
  let cfuncs = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let cblocks =
        Array.of_list
          (List.map
             (fun b -> { clbl = b.lbl; cins = Array.of_list b.ins; cterm = b.term })
             f.blocks)
      in
      let cindex = Hashtbl.create (Array.length cblocks) in
      Array.iteri (fun i cb -> Hashtbl.replace cindex cb.clbl i) cblocks;
      Hashtbl.replace cfuncs f.fname { csrc = f; cblocks; cindex })
    prog.funcs;
  let cintern = Arde_tir.Intern.of_program prog in
  let td_id = Arde_tir.Intern.id cintern thread_done_global in
  {
    prog;
    cfuncs;
    centry = prog.entry;
    cintern;
    td_id;
    td_declared = Arde_tir.Intern.declared cintern td_id;
  }

let intern (c : compiled) = c.cintern

(* ------------------------------------------------------------------ *)
(* Machine state                                                      *)

type frame = {
  ffn : cfunc;
  mutable fblk : int; (* block index *)
  mutable fpc : int; (* instruction index within the block *)
  fregs : (string, int) Hashtbl.t;
  fret : reg option; (* caller register receiving our return value *)
  fdepth : int;
}

type spin_ctx = { sc_loop : int; sc_serial : int; sc_depth : int }

type status =
  | Runnable
  | Blocked_lock of { lkey : string * int; after_wait : (string * int) option }
  | Blocked_cv of { cv : string * int; mu : string * int }
  | Blocked_barrier of (string * int)
  | Blocked_sem of (string * int)
  | Blocked_join of int
  | Done

type thread = {
  tid : int;
  mutable frames : frame list; (* head is the active frame *)
  mutable status : status;
  mutable spins : spin_ctx list; (* head is the innermost active context *)
}

type mutex_state = { mutable owner : int option; mwaiters : int Queue.t }
type cv_state = { cwaiters : (int * (string * int)) Queue.t }
type barrier_state = { mutable total : int; mutable arrived : int list; mutable gen : int }
type sem_state = { mutable count : int; swaiters : int Queue.t }

(* A broken machine invariant: never the interpreted program's fault, and
   never recoverable within the run.  Escapes [run] as a structured
   exception so harnesses can report "the detector crashed" instead of
   dying on a bare [Invalid_argument]. *)
let internal msg = raise (Internal_violation ("Machine: " ^ msg))

type machine = {
  cfg : config;
  cpl : compiled;
  mem : int array array; (* rows indexed by interned base id *)
  threads : thread option array;
  mutable n_threads : int;
  sched : Sched_ref.t;
  rng : Arde_util.Prng.t; (* spurious wakeups only *)
  mutexes : (string * int, mutex_state) Hashtbl.t;
  cvs : (string * int, cv_state) Hashtbl.t;
  barriers : (string * int, barrier_state) Hashtbl.t;
  sems : (string * int, sem_state) Hashtbl.t;
  mutable serial : int; (* spin-context serial counter *)
  mutable checks : (loc * string) list;
  mutable steps : int;
  thread_steps : int array;
  mutable last_tid : int;
  mutable context_switches : int;
}

let runtime_exit_loc tid =
  { lfunc = "<runtime>"; lblk = "thread-exit"; lidx = tid }

let emit m ev = m.cfg.observer ev

let thread m tid =
  match m.threads.(tid) with
  | Some t -> t
  | None -> internal "dead thread id"

let cur_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> internal "thread has no frame"

let cur_loc t =
  let f = cur_frame t in
  let b = f.ffn.cblocks.(f.fblk) in
  if f.fpc < Array.length b.cins then
    { lfunc = f.ffn.csrc.fname; lblk = b.clbl; lidx = f.fpc }
  else { lfunc = f.ffn.csrc.fname; lblk = b.clbl; lidx = -1 }

let fault t msg = raise (Fault_exn (cur_loc t, msg))

let reg_value t r =
  match Hashtbl.find_opt (cur_frame t).fregs r with
  | Some v -> v
  | None -> fault t (Printf.sprintf "register %%%s read before assignment" r)

let eval t = function Imm n -> n | Reg r -> reg_value t r

let set_reg t r v = Hashtbl.replace (cur_frame t).fregs r v

let base_name m id = Arde_tir.Intern.name m.cpl.cintern id

(* Interned resolution for memory accesses: (base id, index). *)
let resolve_id m t (a : addr) =
  let idx = eval t a.index in
  let id = Arde_tir.Intern.id m.cpl.cintern a.base in
  if id < 0 || not (Arde_tir.Intern.declared m.cpl.cintern id) then
    fault t (Printf.sprintf "unknown global %S" a.base)
  else
    let arr = m.mem.(id) in
    if idx < 0 || idx >= Array.length arr then
      fault t (Printf.sprintf "index %d out of bounds for %s[%d]" idx a.base
                 (Array.length arr))
    else (id, idx)

(* Named resolution for synchronization objects (mutexes, cvs, barriers,
   semaphores): these tables are keyed by name and the operations are rare
   enough that string keys cost nothing measurable. *)
let resolve m t (a : addr) =
  let id, idx = resolve_id m t a in
  (base_name m id, idx)

let mem_get m (id, idx) = m.mem.(id).(idx)
let mem_set m (id, idx) v = m.mem.(id).(idx) <- v

let mutex m key =
  match Hashtbl.find_opt m.mutexes key with
  | Some s -> s
  | None ->
      let s = { owner = None; mwaiters = Queue.create () } in
      Hashtbl.replace m.mutexes key s;
      s

let cv m key =
  match Hashtbl.find_opt m.cvs key with
  | Some s -> s
  | None ->
      let s = { cwaiters = Queue.create () } in
      Hashtbl.replace m.cvs key s;
      s

let sem m key =
  match Hashtbl.find_opt m.sems key with
  | Some s -> s
  | None ->
      let s = { count = 0; swaiters = Queue.create () } in
      Hashtbl.replace m.sems key s;
      s

(* ------------------------------------------------------------------ *)
(* Spin-context bookkeeping                                           *)

let spin_pop m t ctx =
  t.spins <- List.tl t.spins;
  emit m (Event.Spin_exit { tid = t.tid; loop_id = ctx.sc_loop; ctx = ctx.sc_serial })

(* Called whenever control in frame [f] lands on (the start of) block
   [blk]: close contexts whose loop no longer contains the block, then
   open one if the block is a marked loop header. *)
let spin_transition m t (f : frame) blk_index =
  match m.cfg.instrument with
  | None -> ()
  | Some inst ->
      let fname = f.ffn.csrc.fname in
      let lbl = f.ffn.cblocks.(blk_index).clbl in
      let rec close () =
        match t.spins with
        | c :: _
          when c.sc_depth = f.fdepth
               && not (Instrument.in_loop inst ~fname ~lbl c.sc_loop) ->
            spin_pop m t c;
            close ()
        | _ -> ()
      in
      close ();
      (match Instrument.header_at inst ~fname ~lbl with
      | Some id ->
          let already =
            match t.spins with
            | c :: _ -> c.sc_loop = id && c.sc_depth = f.fdepth
            | [] -> false
          in
          if not already then begin
            m.serial <- m.serial + 1;
            t.spins <- { sc_loop = id; sc_serial = m.serial; sc_depth = f.fdepth } :: t.spins;
            emit m (Event.Spin_enter { tid = t.tid; loop_id = id; ctx = m.serial })
          end
      | None -> ())

(* Close every context belonging to a popped frame (loop exited by
   returning out of the function). *)
let spin_unwind m t depth =
  let rec go () =
    match t.spins with
    | c :: _ when c.sc_depth >= depth ->
        spin_pop m t c;
        go ()
    | _ -> ()
  in
  go ()

let spin_tags m t l =
  match m.cfg.instrument with
  | None -> []
  | Some inst -> (
      match Instrument.marked_loops_at inst l with
      | [] -> []
      | ids ->
          List.filter_map
            (fun c ->
              if List.mem c.sc_loop ids then Some (c.sc_loop, c.sc_serial)
              else None)
            t.spins)

(* ------------------------------------------------------------------ *)
(* Thread control                                                     *)

let push_frame t (fn : cfunc) args ret =
  let fregs = Hashtbl.create 8 in
  List.iteri (fun i p -> Hashtbl.replace fregs p (List.nth args i)) fn.csrc.params;
  let depth = match t.frames with f :: _ -> f.fdepth + 1 | [] -> 0 in
  t.frames <- { ffn = fn; fblk = 0; fpc = 0; fregs; fret = ret; fdepth = depth } :: t.frames

let advance t = (cur_frame t).fpc <- (cur_frame t).fpc + 1

let wake_joiners m target =
  Array.iter
    (function
      | Some w when w.status = Blocked_join target ->
          w.status <- Runnable;
          emit m (Event.Join_return { tid = w.tid; target; loc = cur_loc w });
          advance w
      | Some _ | None -> ())
    m.threads

let thread_exit m t =
  t.status <- Done;
  spin_unwind m t 0;
  t.frames <- [];
  (* The kernel-visible "thread is gone" store: the cell lowered joins
     spin on.  Attributed to the exiting thread like a real runtime's
     final flag write. *)
  if m.cpl.td_declared then m.mem.(m.cpl.td_id).(t.tid) <- 1;
  emit m
    (Event.Write
       {
         tid = t.tid;
         base = thread_done_global;
         base_id = m.cpl.td_id;
         idx = t.tid;
         value = 1;
         loc = runtime_exit_loc t.tid;
         kind = Event.Plain;
       });
  emit m (Event.Thread_exit { tid = t.tid });
  wake_joiners m t.tid

(* Grant mutex [key] to waiting thread [w], completing its pending Lock
   (or the reacquisition leg of a Cond_wait). *)
let grant_mutex m key w after_wait =
  let mu = mutex m key in
  mu.owner <- Some w.tid;
  (match after_wait with
  | Some (cvb, cvi) ->
      emit m (Event.Cv_wait_return { tid = w.tid; base = cvb; idx = cvi; loc = cur_loc w })
  | None -> ());
  emit m (Event.Lock_acq { tid = w.tid; base = fst key; idx = snd key; loc = cur_loc w });
  w.status <- Runnable;
  advance w

let release_mutex m t key =
  let mu = mutex m key in
  (match mu.owner with
  | Some o when o = t.tid -> ()
  | Some _ -> fault t (Printf.sprintf "unlock of %s[%d] by non-owner" (fst key) (snd key))
  | None -> fault t (Printf.sprintf "unlock of free mutex %s[%d]" (fst key) (snd key)));
  emit m (Event.Lock_rel { tid = t.tid; base = fst key; idx = snd key; loc = cur_loc t });
  if Queue.is_empty mu.mwaiters then mu.owner <- None
  else begin
    let wt = Queue.pop mu.mwaiters in
    let w = thread m wt in
    match w.status with
    | Blocked_lock { after_wait; _ } -> grant_mutex m key w after_wait
    | _ -> internal "mutex waiter in wrong state"
  end

let wake_cv_waiter m key =
  let c = cv m key in
  if Queue.is_empty c.cwaiters then false
  else begin
    let wt, mkey = Queue.pop c.cwaiters in
    let w = thread m wt in
    let mu = mutex m mkey in
    (match mu.owner with
    | None -> grant_mutex m mkey w (Some key)
    | Some _ ->
        w.status <- Blocked_lock { lkey = mkey; after_wait = Some key };
        Queue.push wt mu.mwaiters);
    true
  end

(* ------------------------------------------------------------------ *)
(* Instruction execution                                              *)

let binop_eval t op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then fault t "division by zero" else a / b
  | Mod -> if b = 0 then fault t "modulo by zero" else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a lsr (b land 62)

let cmp_eval op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let find_func m t name =
  match Hashtbl.find_opt m.cpl.cfuncs name with
  | Some fn -> fn
  | None -> fault t (Printf.sprintf "unknown function %S" name)

let spawn_thread m t name args =
  let fn = find_func m t name in
  if m.n_threads >= max_threads then fault t "thread limit exceeded";
  let child_tid = m.n_threads in
  m.n_threads <- m.n_threads + 1;
  let child = { tid = child_tid; frames = []; status = Runnable; spins = [] } in
  m.threads.(child_tid) <- Some child;
  push_frame child fn args None;
  spin_transition m child (cur_frame child) 0;
  child_tid

let exec_call m t ret name args =
  let fn = find_func m t name in
  if List.length args <> List.length fn.csrc.params then
    fault t (Printf.sprintf "arity mismatch calling %S" name);
  advance t;
  push_frame t fn args ret;
  spin_transition m t (cur_frame t) 0

let exec_instr m t i =
  let tid = t.tid in
  match i with
  | Mov (d, o) ->
      set_reg t d (eval t o);
      advance t
  | Binop (d, op, a, b) ->
      set_reg t d (binop_eval t op (eval t a) (eval t b));
      advance t
  | Cmp (d, op, a, b) ->
      set_reg t d (cmp_eval op (eval t a) (eval t b));
      advance t
  | Load (d, a) ->
      let loc = cur_loc t in
      let ((id, idx) as key) = resolve_id m t a in
      let v = mem_get m key in
      emit m
        (Event.Read
           {
             tid;
             base = base_name m id;
             base_id = id;
             idx;
             value = v;
             loc;
             kind = Event.Plain;
             spin = spin_tags m t loc;
           });
      set_reg t d v;
      advance t
  | Store (a, o) ->
      let loc = cur_loc t in
      let ((id, idx) as key) = resolve_id m t a in
      let v = eval t o in
      mem_set m key v;
      emit m
        (Event.Write
           {
             tid;
             base = base_name m id;
             base_id = id;
             idx;
             value = v;
             loc;
             kind = Event.Plain;
           });
      advance t
  | Cas (d, a, expect, new_) ->
      let loc = cur_loc t in
      let ((id, idx) as key) = resolve_id m t a in
      let old = mem_get m key in
      emit m
        (Event.Read
           {
             tid;
             base = base_name m id;
             base_id = id;
             idx;
             value = old;
             loc;
             kind = Event.Atomic;
             spin = spin_tags m t loc;
           });
      if old = eval t expect then begin
        let v = eval t new_ in
        mem_set m key v;
        emit m
          (Event.Write
             {
               tid;
               base = base_name m id;
               base_id = id;
               idx;
               value = v;
               loc;
               kind = Event.Atomic;
             });
        set_reg t d 1
      end
      else set_reg t d 0;
      advance t
  | Rmw (d, op, a, arg) ->
      let loc = cur_loc t in
      let ((id, idx) as key) = resolve_id m t a in
      let old = mem_get m key in
      emit m
        (Event.Read
           {
             tid;
             base = base_name m id;
             base_id = id;
             idx;
             value = old;
             loc;
             kind = Event.Atomic;
             spin = spin_tags m t loc;
           });
      let v =
        match op with
        | Rmw_add -> old + eval t arg
        | Rmw_exchange -> eval t arg
        | Rmw_or -> old lor eval t arg
        | Rmw_and -> old land eval t arg
      in
      mem_set m key v;
      emit m
        (Event.Write
           {
             tid;
             base = base_name m id;
             base_id = id;
             idx;
             value = v;
             loc;
             kind = Event.Atomic;
           });
      set_reg t d old;
      advance t
  | Fence | Nop -> advance t
  | Yield ->
      Sched_ref.force_switch m.sched;
      advance t
  | Check (o, msg) ->
      if eval t o = 0 then m.checks <- (cur_loc t, msg) :: m.checks;
      advance t
  | Call (ret, name, args) ->
      let args = List.map (eval t) args in
      exec_call m t ret name args
  | Call_indirect (ret, target, args) ->
      let ti = eval t target in
      let table = m.cpl.prog.func_table in
      if ti < 0 || ti >= List.length table then
        fault t (Printf.sprintf "indirect call index %d out of range" ti)
      else
        let args = List.map (eval t) args in
        exec_call m t ret (List.nth table ti) args
  | Spawn (d, name, args) ->
      let args = List.map (eval t) args in
      let loc = cur_loc t in
      let child = spawn_thread m t name args in
      set_reg t d child;
      emit m (Event.Spawn_ev { parent = tid; child; loc });
      emit m (Event.Thread_start { tid = child });
      advance t
  | Join o -> (
      let target = eval t o in
      if target < 0 || target >= m.n_threads then
        fault t (Printf.sprintf "join of unknown thread %d" target)
      else
        match m.threads.(target) with
        | Some tt when tt.status = Done ->
            emit m (Event.Join_return { tid; target; loc = cur_loc t });
            advance t
        | Some _ -> t.status <- Blocked_join target
        | None -> fault t "join of never-spawned thread")
  | Lock a -> (
      let key = resolve m t a in
      let mu = mutex m key in
      match mu.owner with
      | None ->
          mu.owner <- Some tid;
          emit m (Event.Lock_acq { tid; base = fst key; idx = snd key; loc = cur_loc t });
          advance t
      | Some o when o = tid ->
          fault t (Printf.sprintf "recursive lock of %s[%d]" (fst key) (snd key))
      | Some _ ->
          Queue.push tid mu.mwaiters;
          t.status <- Blocked_lock { lkey = key; after_wait = None })
  | Unlock a ->
      let key = resolve m t a in
      release_mutex m t key;
      advance t
  | Cond_wait (cva, ma) ->
      let ckey = resolve m t cva in
      let mkey = resolve m t ma in
      let mu = mutex m mkey in
      (match mu.owner with
      | Some o when o = tid -> ()
      | Some _ | None -> fault t "cond_wait without holding the mutex");
      emit m
        (Event.Cv_wait_begin
           { tid; base = fst ckey; idx = snd ckey; loc = cur_loc t });
      release_mutex m t mkey;
      Queue.push (tid, mkey) (cv m ckey).cwaiters;
      t.status <- Blocked_cv { cv = ckey; mu = mkey }
  | Cond_signal a ->
      let key = resolve m t a in
      let had_waiter = not (Queue.is_empty (cv m key).cwaiters) in
      emit m
        (Event.Cv_signal
           {
             tid; base = fst key; idx = snd key; loc = cur_loc t;
             broadcast = false; had_waiter;
           });
      ignore (wake_cv_waiter m key);
      advance t
  | Cond_broadcast a ->
      let key = resolve m t a in
      let had_waiter = not (Queue.is_empty (cv m key).cwaiters) in
      emit m
        (Event.Cv_signal
           {
             tid; base = fst key; idx = snd key; loc = cur_loc t;
             broadcast = true; had_waiter;
           });
      while wake_cv_waiter m key do
        ()
      done;
      advance t
  | Barrier_init (a, n) ->
      let key = resolve m t a in
      let total = eval t n in
      if total <= 0 then fault t "barrier initialized with non-positive count";
      Hashtbl.replace m.barriers key { total; arrived = []; gen = 0 };
      advance t
  | Barrier_wait a -> (
      let key = resolve m t a in
      match Hashtbl.find_opt m.barriers key with
      | None -> fault t "barrier_wait before barrier_init"
      | Some bar ->
          emit m
            (Event.Barrier_arrive
               { tid; base = fst key; idx = snd key; generation = bar.gen; loc = cur_loc t });
          bar.arrived <- tid :: bar.arrived;
          if List.length bar.arrived = bar.total then begin
            let gen = bar.gen in
            let everyone = bar.arrived in
            bar.arrived <- [];
            bar.gen <- gen + 1;
            List.iter
              (fun wt ->
                let w = thread m wt in
                emit m
                  (Event.Barrier_pass
                     {
                       tid = wt;
                       base = fst key;
                       idx = snd key;
                       generation = gen;
                       loc = cur_loc w;
                     });
                if wt <> tid then begin
                  w.status <- Runnable;
                  advance w
                end)
              (List.rev everyone);
            advance t
          end
          else t.status <- Blocked_barrier key)
  | Sem_init (a, n) ->
      let key = resolve m t a in
      (sem m key).count <- eval t n;
      advance t
  | Sem_post a ->
      let key = resolve m t a in
      let s = sem m key in
      emit m (Event.Sem_post_ev { tid; base = fst key; idx = snd key; loc = cur_loc t });
      if Queue.is_empty s.swaiters then s.count <- s.count + 1
      else begin
        let wt = Queue.pop s.swaiters in
        let w = thread m wt in
        emit m
          (Event.Sem_acquire { tid = wt; base = fst key; idx = snd key; loc = cur_loc w });
        w.status <- Runnable;
        advance w
      end;
      advance t
  | Sem_wait a ->
      let key = resolve m t a in
      let s = sem m key in
      if s.count > 0 then begin
        s.count <- s.count - 1;
        emit m (Event.Sem_acquire { tid; base = fst key; idx = snd key; loc = cur_loc t });
        advance t
      end
      else begin
        Queue.push tid s.swaiters;
        t.status <- Blocked_sem key
      end

let exec_term m t =
  let f = cur_frame t in
  let goto_label lbl =
    match Hashtbl.find_opt f.ffn.cindex lbl with
    | Some i ->
        f.fblk <- i;
        f.fpc <- 0;
        spin_transition m t f i
    | None -> fault t (Printf.sprintf "unknown label %S" lbl)
  in
  match f.ffn.cblocks.(f.fblk).cterm with
  | Goto l -> goto_label l
  | Br (o, a, b) -> goto_label (if eval t o <> 0 then a else b)
  | Exit -> thread_exit m t
  | Ret o -> (
      let v = Option.map (eval t) o in
      spin_unwind m t f.fdepth;
      t.frames <- List.tl t.frames;
      match t.frames with
      | [] -> thread_exit m t
      | _ -> (
          match (f.fret, v) with
          | Some d, Some v -> set_reg t d v
          | Some d, None -> set_reg t d 0
          | None, _ -> ()))

let step m t =
  let f = cur_frame t in
  let b = f.ffn.cblocks.(f.fblk) in
  if f.fpc < Array.length b.cins then exec_instr m t b.cins.(f.fpc)
  else exec_term m t

(* ------------------------------------------------------------------ *)
(* Top-level loop                                                     *)

let inject_spurious_wakeup m =
  (* Pick some condition-variable waiter and wake it without a signal. *)
  let woken = ref false in
  Hashtbl.iter
    (fun key c ->
      if (not !woken) && not (Queue.is_empty c.cwaiters) then begin
        woken := true;
        ignore key;
        ignore (wake_cv_waiter m key)
      end)
    m.cvs

(* Fuel ran out: was anybody stuck inside an instrumented spinning read
   loop?  If so the exhaustion is a livelock — the paper's "spinning read
   loop never released by a counterpart write" — and we can name the loop
   and the condition variables it reads.  Benign exhaustion (long-running
   compute, no active spin context) stays [Fuel_exhausted]. *)
let livelock_sites m =
  match m.cfg.instrument with
  | None -> []
  | Some inst ->
      let sites = ref [] in
      for i = m.n_threads - 1 downto 0 do
        match m.threads.(i) with
        | Some t when t.status = Runnable -> (
            match t.spins with
            | c :: _ -> (
                match Instrument.find_spin inst c.sc_loop with
                | { Instrument.s_cand = cand; _ } ->
                    sites :=
                      {
                        sp_tid = t.tid;
                        sp_loop = c.sc_loop;
                        sp_loc =
                          {
                            lfunc = cand.Arde_cfg.Spin.c_func;
                            lblk = cand.Arde_cfg.Spin.c_header;
                            lidx = 0;
                          };
                        sp_bases = cand.Arde_cfg.Spin.c_bases;
                      }
                      :: !sites
                | exception Not_found -> ())
            | [] -> ())
        | Some _ | None -> ()
      done;
      !sites

let exhaustion_outcome m =
  match livelock_sites m with [] -> Fuel_exhausted | sites -> Livelock sites

let run cfg cpl =
  let mem = Array.make (Arde_tir.Intern.n_bases cpl.cintern) [||] in
  (* Iterating in declaration order means a duplicate declaration's last
     row wins, matching the historical Hashtbl.replace behaviour. *)
  List.iter
    (fun gl ->
      mem.(Arde_tir.Intern.id cpl.cintern gl.gname) <-
        Array.make gl.size gl.ginit)
    cpl.prog.globals;
  let m =
    {
      cfg;
      cpl;
      mem;
      threads = Array.make max_threads None;
      n_threads = 0;
      sched = Sched_ref.create cfg.policy ~seed:cfg.seed;
      rng = Arde_util.Prng.create (cfg.seed lxor 0x5bd1e995);
      mutexes = Hashtbl.create 8;
      cvs = Hashtbl.create 8;
      barriers = Hashtbl.create 4;
      sems = Hashtbl.create 4;
      serial = 0;
      checks = [];
      steps = 0;
      thread_steps = Array.make max_threads 0;
      last_tid = -1;
      context_switches = 0;
    }
  in
  let entry_fn =
    match Hashtbl.find_opt cpl.cfuncs cpl.centry with
    | Some fn -> fn
    | None -> internal "entry function missing"
  in
  let main = { tid = 0; frames = []; status = Runnable; spins = [] } in
  m.threads.(0) <- Some main;
  m.n_threads <- 1;
  push_frame main entry_fn [] None;
  spin_transition m main (cur_frame main) 0;
  m.cfg.observer (Event.Thread_start { tid = 0 });
  let outcome = ref None in
  while !outcome = None do
    let runnable = ref [] in
    for i = m.n_threads - 1 downto 0 do
      match m.threads.(i) with
      | Some t when t.status = Runnable -> runnable := i :: !runnable
      | Some _ | None -> ()
    done;
    (match !runnable with
    | [] ->
        let blocked = ref [] in
        for i = m.n_threads - 1 downto 0 do
          match m.threads.(i) with
          | Some t when t.status <> Done && t.status <> Runnable ->
              blocked := i :: !blocked
          | Some _ | None -> ()
        done;
        outcome := Some (if !blocked = [] then Finished else Deadlock !blocked)
    | runnable ->
        if m.steps >= cfg.fuel then outcome := Some (exhaustion_outcome m)
        else begin
          m.steps <- m.steps + 1;
          if cfg.spurious_wakeups && Arde_util.Prng.int m.rng 256 = 0 then
            inject_spurious_wakeup m;
          let tid = Sched_ref.pick m.sched ~runnable in
          m.thread_steps.(tid) <- m.thread_steps.(tid) + 1;
          if tid <> m.last_tid then begin
            if m.last_tid >= 0 then m.context_switches <- m.context_switches + 1;
            m.last_tid <- tid
          end;
          let t = thread m tid in
          try step m t
          with Fault_exn (floc, msg) ->
            outcome := Some (Fault { ftid = tid; floc; msg })
        end);
    ()
  done;
  let outcome = Option.get !outcome in
  (* Rebuild the string-keyed view of final memory for result consumers;
     rows are shared with the machine, not copied. *)
  let memory = Hashtbl.create 16 in
  List.iter
    (fun gl ->
      Hashtbl.replace memory gl.gname
        m.mem.(Arde_tir.Intern.id cpl.cintern gl.gname))
    cpl.prog.globals;
  {
    outcome;
    steps = m.steps;
    threads_spawned = m.n_threads;
    check_failures = List.rev m.checks;
    memory;
    thread_steps = Array.sub m.thread_steps 0 m.n_threads;
    context_switches = m.context_switches;
  }

let run_program cfg prog = run cfg (compile prog)
