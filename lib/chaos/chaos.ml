(* Deterministic perturbation of detector runs.  Everything here flows
   from a single PRNG seed so a failing chaos case replays exactly. *)

module Machine = Arde_runtime.Machine
module Sched = Arde_runtime.Sched
module Driver = Arde_detect.Driver
module Input = Arde_detect.Input
module Config = Arde_detect.Config
module Prng = Arde_util.Prng

type perturbation =
  | Adversarial_policy of Sched.policy
  | Spurious_wakeups
  | Fault_at of int
  | Crash_at of int
  | Starve_fuel of int
  | Shift_seeds of int

exception Chaos_crash of string

let pp_perturbation ppf = function
  | Adversarial_policy (Sched.Round_robin q) ->
      Format.fprintf ppf "policy rr:%d" q
  | Adversarial_policy Sched.Uniform -> Format.pp_print_string ppf "policy uniform"
  | Adversarial_policy (Sched.Chunked n) -> Format.fprintf ppf "policy chunked:%d" n
  | Spurious_wakeups -> Format.pp_print_string ppf "spurious wakeups"
  | Fault_at n -> Format.fprintf ppf "machine fault at event %d" n
  | Crash_at n -> Format.fprintf ppf "internal crash at event %d" n
  | Starve_fuel f -> Format.fprintf ppf "fuel starved to %d" f
  | Shift_seeds k -> Format.fprintf ppf "seeds shifted by %d" k

let chaos_loc n =
  { Arde_tir.Types.lfunc = "<chaos>"; lblk = "inject"; lidx = n }

(* Per-seed observer that blows up at the [n]th event it sees. *)
let at_event n blow =
  fun ~seed:_ ->
    let count = ref 0 in
    fun _ev ->
      incr count;
      if !count = n then blow ()

module Options = Arde_detect.Options

let apply (options : Options.t) = function
  | Adversarial_policy policy -> Options.with_policy policy options
  | Spurious_wakeups -> Options.with_spurious_wakeups true options
  | Starve_fuel fuel -> Options.with_fuel fuel options
  | Shift_seeds k ->
      Options.with_seeds (List.map (( + ) k) options.Options.seeds) options
  | Fault_at n ->
      Options.with_inject
        (Some
           (at_event n (fun () ->
                raise (Machine.Fault_exn (chaos_loc n, "chaos: injected fault")))))
        options
  | Crash_at n ->
      Options.with_inject
        (Some
           (at_event n (fun () ->
                raise (Chaos_crash "chaos: injected internal crash"))))
        options

let benign = function
  | Adversarial_policy _ | Shift_seeds _ -> true
  | Spurious_wakeups | Fault_at _ | Crash_at _ | Starve_fuel _ -> false

let policies =
  [|
    Sched.Round_robin 1;
    Sched.Round_robin 13;
    Sched.Uniform;
    Sched.Chunked 1;
    Sched.Chunked 64;
  |]

let gen rng =
  match Prng.int rng 6 with
  | 0 -> Adversarial_policy (Prng.pick rng policies)
  | 1 -> Spurious_wakeups
  | 2 -> Fault_at (1 + Prng.int rng 500)
  | 3 -> Crash_at (1 + Prng.int rng 500)
  | 4 -> Starve_fuel (Prng.int rng 3_000)
  | _ -> Shift_seeds (1 + Prng.int rng 1_000)

type report = {
  ch_runs : int;
  ch_healthy : int;
  ch_degraded : int;
  ch_failed : int;
  ch_escaped : (perturbation * string) list;
}

let run_one ?(options = Options.default) mode program p =
  match
    Driver.run
      ~ctx:(Driver.ctx ~options:(apply options p) ())
      ~mode (Input.Program program)
  with
  | result -> Ok result
  | exception e -> Error (Printexc.to_string e)

let storm ?(options = Options.default) ?(runs = 50) ~seed mode program =
  let rng = Prng.create seed in
  let healthy = ref 0
  and degraded = ref 0
  and failed = ref 0
  and escaped = ref [] in
  for _ = 1 to runs do
    let p = gen rng in
    match run_one ~options mode program p with
    | Ok r -> (
        match r.Driver.health.Driver.h_verdict with
        | Driver.Healthy -> incr healthy
        | Driver.Degraded -> incr degraded
        | Driver.Failed -> incr failed)
    | Error msg -> escaped := (p, msg) :: !escaped
  done;
  {
    ch_runs = runs;
    ch_healthy = !healthy;
    ch_degraded = !degraded;
    ch_failed = !failed;
    ch_escaped = List.rev !escaped;
  }

let report_to_json r =
  let module J = Arde_util.Json in
  J.Obj
    [
      ("runs", J.Int r.ch_runs);
      ("healthy", J.Int r.ch_healthy);
      ("degraded", J.Int r.ch_degraded);
      ("failed", J.Int r.ch_failed);
      ( "escaped",
        J.List
          (List.map
             (fun (p, msg) ->
               J.Obj
                 [
                   ( "perturbation",
                     J.String (Format.asprintf "%a" pp_perturbation p) );
                   ("error", J.String msg);
                 ])
             r.ch_escaped) );
    ]

(* ------------------------------------------------------------------ *)
(* Serve-path fault plans                                             *)

module Serve = struct
  type fault =
    | Kill_self
    | Wedge
    | Torn_frame
    | Slow_frame
    | Spool_enospc

  let fault_name = function
    | Kill_self -> "kill"
    | Wedge -> "wedge"
    | Torn_frame -> "torn"
    | Slow_frame -> "slow"
    | Spool_enospc -> "spool"

  let fault_of_name = function
    | "kill" -> Some Kill_self
    | "wedge" -> Some Wedge
    | "torn" -> Some Torn_frame
    | "slow" -> Some Slow_frame
    | "spool" -> Some Spool_enospc
    | _ -> None

  type plan = (fault * int) list

  let empty : plan = []

  let to_string plan =
    String.concat ","
      (List.map (fun (f, k) -> Printf.sprintf "%s:%d" (fault_name f) k) plan)

  let parse s =
    if String.trim s = "" then Ok empty
    else
      let entries = String.split_on_char ',' s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: tl -> (
            match String.index_opt e ':' with
            | None ->
                Error
                  (Printf.sprintf
                     "chaos plan entry %S is not of the form FAULT:K" e)
            | Some i -> (
                let name = String.trim (String.sub e 0 i) in
                let period =
                  String.trim (String.sub e (i + 1) (String.length e - i - 1))
                in
                match (fault_of_name name, int_of_string_opt period) with
                | None, _ ->
                    Error
                      (Printf.sprintf
                         "unknown chaos fault %S (use kill, wedge, torn, \
                          slow or spool)"
                         name)
                | Some f, Some k when k > 0 -> go ((f, k) :: acc) tl
                | Some _, _ ->
                    Error
                      (Printf.sprintf
                         "chaos fault %S needs a positive period, got %S"
                         name period)))
      in
      go [] entries

  let fires plan ~count =
    List.filter_map
      (fun (f, k) -> if count > 0 && count mod k = 0 then Some f else None)
      plan
end

let pp_report ppf r =
  Format.fprintf ppf
    "%d perturbed runs: %d healthy, %d degraded, %d failed, %d escaped \
     exception%s"
    r.ch_runs r.ch_healthy r.ch_degraded r.ch_failed
    (List.length r.ch_escaped)
    (if List.length r.ch_escaped = 1 then "" else "s");
  List.iter
    (fun (p, msg) ->
      Format.fprintf ppf "@\n  ESCAPED under %a: %s" pp_perturbation p msg)
    r.ch_escaped
