(** Deterministic fault injection for the detection pipeline.

    The paper's detector has to survive programs it was never taught
    about; this module makes sure the {e pipeline} survives runs it was
    never taught about.  A {!perturbation} is a single deterministic
    distortion of a detector run — an adversarial scheduler, forced
    spurious wakeups, a machine fault or internal crash injected at the
    Nth observed event, fuel starvation, a shifted seed set.  {!storm}
    sweeps many perturbations (all derived from one PRNG seed, so every
    storm is replayable) through [Driver.run] and reports whether any
    exception ever escaped the sandbox — the property the robustness
    suite pins down: the pipeline never raises and always yields a health
    record. *)

type perturbation =
  | Adversarial_policy of Arde_runtime.Sched.policy
      (** Replace the scheduling policy wholesale. *)
  | Spurious_wakeups  (** Force the machine's spurious-wakeup injection. *)
  | Fault_at of int
      (** Raise [Machine.Fault_exn] from the observer at the Nth event of
          each seed: the machine converts mid-step faults into a [Fault]
          outcome. *)
  | Crash_at of int
      (** Raise {!Chaos_crash} at the Nth event: an exception the machine
          does not understand, which must be caught by the driver's
          per-seed sandbox and surface as [Crashed]. *)
  | Starve_fuel of int  (** Run with this (tiny) fuel budget. *)
  | Shift_seeds of int  (** Add a constant to every scheduler seed. *)

exception Chaos_crash of string
(** The injected "detector bug" used by [Crash_at]. *)

val pp_perturbation : Format.formatter -> perturbation -> unit

val apply :
  Arde_detect.Options.t -> perturbation -> Arde_detect.Options.t
(** Distort a set of driver options with one perturbation. *)

val benign : perturbation -> bool
(** Can the perturbation, by construction, make a seed unhealthy?
    Schedule-shaped perturbations (policy, seed shift) are benign: every
    seed still runs to completion, so a detector whose verdicts are
    schedule-robust must not flip them. *)

val gen : Arde_util.Prng.t -> perturbation
(** Draw a perturbation deterministically from the generator. *)

type report = {
  ch_runs : int;
  ch_healthy : int;
  ch_degraded : int;
  ch_failed : int;
  ch_escaped : (perturbation * string) list;
      (** Exceptions that escaped [Driver.run] — always a bug; the
          sandbox exists so this list stays empty. *)
}

val run_one :
  ?options:Arde_detect.Options.t ->
  Arde_detect.Config.mode ->
  Arde_tir.Types.program ->
  perturbation ->
  (Arde_detect.Driver.result, string) Result.t
(** One perturbed detector run; [Error] carries the message of an
    exception that escaped the pipeline (which should never happen). *)

val storm :
  ?options:Arde_detect.Options.t ->
  ?runs:int ->
  seed:int ->
  Arde_detect.Config.mode ->
  Arde_tir.Types.program ->
  report
(** [storm ~seed mode program] executes [runs] (default 50) perturbed
    detector runs, perturbations drawn from [Prng.create seed], and
    tallies the resulting health verdicts. *)

(** {1 Serve-path fault plans}

    Deterministic fault injection for the crash-only serving stack: a
    {!Serve.plan} names which process-level faults a worker inflicts on
    itself and how often, counted in requests that worker has executed.
    The plan travels to worker processes as a string (the hidden
    [--chaos-plan] flag), so it must round-trip through
    {!Serve.to_string} / {!Serve.parse}.  The supervisor's job is to
    make every one of these faults invisible to clients except as a
    structured, retryable error. *)

module Serve : sig
  type fault =
    | Kill_self
        (** SIGKILL the worker process mid-request, after the spool
            journal is written — the moral equivalent of a segfault. *)
    | Wedge
        (** Stop answering: burn wall-clock ignoring [should_stop] until
            the supervisor's watchdog kills the worker. *)
    | Torn_frame
        (** Write half of the response frame, then exit — the supervisor
            sees EOF mid-frame and must treat it as a crash. *)
    | Slow_frame
        (** Dribble the response frame byte-group by byte-group — the
            supervisor's reassembly must survive arbitrary chunking. *)
    | Spool_enospc
        (** Fail the spool journal write with ENOSPC — journaling is
            best-effort, the request must still be served. *)

  type plan = (fault * int) list
  (** Each [(fault, k)] entry fires on every request whose per-worker
      ordinal is a positive multiple of [k]. *)

  val empty : plan

  val parse : string -> (plan, string) result
  (** Parse ["kill:13,wedge:40"]-style specs.  [""] is {!empty}. *)

  val to_string : plan -> string

  val fires : plan -> count:int -> fault list
  (** The faults due on the [count]-th request ([count >= 1]). *)

  val fault_name : fault -> string
end

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Arde_util.Json.t
(** Stable serialized form for [arde chaos --format json]. *)
