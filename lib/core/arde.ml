(** ARDE — ad-hoc synchronization identification for enhanced race
    detection.

    This is the library's front door.  It re-exports every sub-library
    under one namespace and provides the high-level entry points most
    clients need:

    {[
      let program = (* build a TIR program with Arde.Builder *) in
      let result = Arde.detect (Arde.Config.Helgrind_spin 7) program in
      Format.printf "%a" Arde.Report.pp result.Arde.Driver.merged
    ]}

    See DESIGN.md for the system inventory and EXPERIMENTS.md for the
    paper-reproduction results. *)

(* The threaded IR. *)
module Types = Arde_tir.Types
module Intern = Arde_tir.Intern
module Builder = Arde_tir.Builder
module Validate = Arde_tir.Validate
module Pretty = Arde_tir.Pretty
module Lower = Arde_tir.Lower
module Parse = Arde_tir.Parse

(* Instrumentation phase (control-flow analysis). *)
module Graph = Arde_cfg.Graph
module Dominators = Arde_cfg.Dominators
module Loops = Arde_cfg.Loops
module Slice = Arde_cfg.Slice
module Spin = Arde_cfg.Spin
module Instrument = Arde_cfg.Instrument
module Lock_infer = Arde_cfg.Lock_infer

(* Execution substrate. *)
module Event = Arde_runtime.Event

module Observer = Arde_runtime.Observer
(** The one composition surface for event consumers: engines, checkers,
    trace collectors and recording sinks all expose an [Observer.t], and
    all fan-out goes through [Observer.tee]/[tee_all].  [Observer.none]
    (physical identity) arms the machine's quiet fast path. *)

module Sched = Arde_runtime.Sched
module Machine = Arde_runtime.Machine
module Machine_ref = Arde_runtime.Machine_ref
module Trace = Arde_runtime.Trace

module Trace_codec = Arde_runtime.Trace_codec
(** The compact binary trace format: varint-encoded events over
    per-section interned vocabulary, a versioned header carrying program
    digest, mode and knobs, and per-seed sections sealed with an
    integrity hash.  [Trace_codec.sink_observer] is the recording
    observer; see DESIGN.md for the wire layout. *)

(* Detection. *)
module Vector_clock = Arde_vclock.Vector_clock

(* Prediction: sync-preserving races from recorded traces, no
   re-execution.  [Options.with_analysis Predict] wires it into
   {!detect}; these are the raw per-section building blocks. *)
module Sp_trace = Arde_predict.Sp_trace
module Sp_predict = Arde_predict.Sp_predict
module Lockset = Arde_detect.Lockset
module Msm = Arde_detect.Msm
module Shadow = Arde_detect.Shadow
module Shadow_epoch = Arde_detect.Shadow_epoch
module Report = Arde_detect.Report
module Config = Arde_detect.Config
module Engine = Arde_detect.Engine
module Engine_ref = Arde_detect.Engine_ref
module Cv_checker = Arde_detect.Cv_checker
module Options = Arde_detect.Options
module Analysis_cache = Arde_detect.Analysis_cache

module Recorded = Arde_detect.Recorded
(** A loaded recording: the typed (mode/options/program) view of a
    binary trace, validated end to end. *)

module Input = Arde_detect.Input
(** What detection consumes — [Text], [Program] or [Recorded_trace].
    Every front door ({!detect}, [Driver.run], the serve protocol)
    takes one. *)

module Driver = Arde_detect.Driver

(* Robustness: deterministic fault injection for the pipeline itself. *)
module Chaos = Arde_chaos.Chaos

(* Result classification for labelled test cases. *)
module Classify = Classify

(* Utilities. *)
module Prng = Arde_util.Prng
module Table = Arde_util.Table
module Json = Arde_util.Json
module Base64 = Arde_util.Base64
module Domain_pool = Arde_util.Domain_pool

let analyze_spins ~k program = Instrument.analyze ~k program
(** Run only the instrumentation phase: find and classify spinning read
    loops with window [k]. *)

let detect ?ctx ?mode input = Driver.run ?ctx ?mode input
(** Run detection on an {!Input.t} — the one front door.  For program
    inputs this is the full pipeline: lowering if the mode requires it,
    spin instrumentation if the mode has a window, execution under each
    seed, race detection, deterministic merge.  For a recorded trace the
    machine never runs: the recording replays through a fresh engine
    ({!Driver.replay}) and yields the same result bytes as the live run
    that produced it.  [ctx] ({!Driver.ctx}) carries the how — options,
    engine choice, a resident domain pool, cooperative cancellation, a
    precomputed cache digest. *)

let record ?ctx ?mode ?detect ?source input =
  Driver.record ?ctx ?mode ?detect ?source input
(** Execute once and seal the event stream into a binary trace
    ({!Driver.record}); replaying it with {!detect} later reproduces the
    detection results without re-running the program. *)

let classify_case ?options mode expectation program =
  let ctx = Driver.ctx ?options () in
  let result = Driver.run ~ctx ~mode (Input.Program program) in
  Classify.classify expectation ~reported:(Driver.racy_bases result)
(** Detect and classify against ground truth in one call (unit-suite
    helper). *)
