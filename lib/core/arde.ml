(** ARDE — ad-hoc synchronization identification for enhanced race
    detection.

    This is the library's front door.  It re-exports every sub-library
    under one namespace and provides the high-level entry points most
    clients need:

    {[
      let program = (* build a TIR program with Arde.Builder *) in
      let result = Arde.detect (Arde.Config.Helgrind_spin 7) program in
      Format.printf "%a" Arde.Report.pp result.Arde.Driver.merged
    ]}

    See DESIGN.md for the system inventory and EXPERIMENTS.md for the
    paper-reproduction results. *)

(* The threaded IR. *)
module Types = Arde_tir.Types
module Intern = Arde_tir.Intern
module Builder = Arde_tir.Builder
module Validate = Arde_tir.Validate
module Pretty = Arde_tir.Pretty
module Lower = Arde_tir.Lower
module Parse = Arde_tir.Parse

(* Instrumentation phase (control-flow analysis). *)
module Graph = Arde_cfg.Graph
module Dominators = Arde_cfg.Dominators
module Loops = Arde_cfg.Loops
module Slice = Arde_cfg.Slice
module Spin = Arde_cfg.Spin
module Instrument = Arde_cfg.Instrument
module Lock_infer = Arde_cfg.Lock_infer

(* Execution substrate. *)
module Event = Arde_runtime.Event
module Sched = Arde_runtime.Sched
module Machine = Arde_runtime.Machine
module Machine_ref = Arde_runtime.Machine_ref
module Trace = Arde_runtime.Trace

(* Detection. *)
module Vector_clock = Arde_vclock.Vector_clock
module Lockset = Arde_detect.Lockset
module Msm = Arde_detect.Msm
module Shadow = Arde_detect.Shadow
module Shadow_epoch = Arde_detect.Shadow_epoch
module Report = Arde_detect.Report
module Config = Arde_detect.Config
module Engine = Arde_detect.Engine
module Engine_ref = Arde_detect.Engine_ref
module Cv_checker = Arde_detect.Cv_checker
module Options = Arde_detect.Options
module Analysis_cache = Arde_detect.Analysis_cache
module Driver = Arde_detect.Driver

(* Robustness: deterministic fault injection for the pipeline itself. *)
module Chaos = Arde_chaos.Chaos

(* Result classification for labelled test cases. *)
module Classify = Classify

(* Utilities. *)
module Prng = Arde_util.Prng
module Table = Arde_util.Table
module Json = Arde_util.Json
module Domain_pool = Arde_util.Domain_pool

let analyze_spins ~k program = Instrument.analyze ~k program
(** Run only the instrumentation phase: find and classify spinning read
    loops with window [k]. *)

let detect ?options ?pool ?should_stop ?program_digest mode program =
  Driver.run ?options ?pool ?should_stop ?program_digest mode program
(** Run the full pipeline — lowering if the mode requires it, spin
    instrumentation if the mode has a window, execution under each seed,
    race detection — and return the merged result.  [pool],
    [should_stop] and [program_digest] are the serve daemon's hooks: a
    resident domain pool for the per-seed stage, a cooperative
    between-seeds cancellation check, and a precomputed cache key that
    lets a warm request skip the canonical-digest pretty-print. *)

let classify_case ?options mode expectation program =
  let result = Driver.run ?options mode program in
  Classify.classify expectation ~reported:(Driver.racy_bases result)
(** Detect and classify against ground truth in one call (unit-suite
    helper). *)
