(* The effect of the spin window k (the paper's Table 2, in miniature).

   The same flag handoff is implemented with spinning read loops of
   increasing complexity — 1 to 10 basic blocks, counting condition
   helpers as if inlined.  For each k we show which loops the
   instrumentation phase accepts and whether the detector stays quiet.

   Run with: dune exec examples/spin_window.exe *)

module W = Arde_workloads

let windows = [ 1; 2; 3; 5; 6; 7; 9; 10 ]

let case_for window =
  let name = Printf.sprintf "adhoc_flag_w%d/2" window in
  match W.Racey.find name with
  | Some c -> (window, c.W.Racey.program)
  | None -> failwith ("missing case " ^ name)

let () =
  let cases = List.map case_for windows in
  Format.printf
    "columns: loop window w; rows: detector window k; cell: warnings@.@.";
  Format.printf "      ";
  List.iter (fun (w, _) -> Format.printf " w=%-3d" w) cases;
  Format.printf "@.";
  List.iter
    (fun k ->
      Format.printf "k = %-2d" k;
      List.iter
        (fun (_, program) ->
          let result =
            Arde.detect
              ~mode:(Arde.Config.Helgrind_spin k)
              (Arde.Input.Program program)
          in
          let n = Arde.Report.n_contexts result.Arde.Driver.merged in
          Format.printf " %-5s" (if n = 0 then "ok" else string_of_int n))
        cases;
      Format.printf "@.")
    [ 3; 6; 7; 8 ];
  Format.printf
    "@.Loops up to the window are recovered ('ok'); larger ones keep their@.";
  Format.printf
    "false positives.  k = 7 matches every realistic loop in the suite,@.";
  Format.printf "and k = 8 adds nothing - the paper's observation.@."
