(* Quickstart: the paper's motivating example, end to end.

     Thread 1: DATA++; FLAG := 1
     Thread 2: while (FLAG == 0) { }; DATA--

   We build the program with Arde.Builder, run the hybrid detector with
   and without spinning-read-loop detection, and show the false positive
   disappearing.  Run with: dune exec examples/quickstart.exe *)

open Arde.Builder

let program =
  let producer =
    func "producer"
      [
        blk "entry"
          [
            load "d" (g "data");
            addi "d1" (r "d") (imm 1);
            store (g "data") (r "d1");
            store (g "flag") (imm 1);
          ]
          exit_t;
      ]
  in
  let consumer =
    func "consumer"
      [
        blk "entry" [] (goto "spin");
        blk "spin" [ load "f" (g "flag") ] (br (r "f") "work" "spin");
        blk "work"
          [
            load "d" (g "data");
            subi "d1" (r "d") (imm 1);
            store (g "data") (r "d1");
          ]
          exit_t;
      ]
  in
  let main =
    func "main"
      [
        blk "entry"
          [ spawn "t1" "producer" []; spawn "t2" "consumer" [] ]
          (goto "wait");
        blk "wait" [ join (r "t1"); join (r "t2") ] exit_t;
      ]
  in
  program ~globals:[ global "data" (); global "flag" () ] ~entry:"main"
    [ main; producer; consumer ]

let show_mode mode =
  let result = Arde.detect ~mode (Arde.Input.Program program) in
  Format.printf "--- %s ---@." (Arde.Config.mode_name mode);
  Format.printf "spin loops found by the instrumentation phase: %d@."
    result.Arde.Driver.n_spin_loops;
  let report = result.Arde.Driver.merged in
  if Arde.Report.n_contexts report = 0 then
    Format.printf "no warnings - the ad-hoc synchronization was understood@.@."
  else Format.printf "%a@." Arde.Report.pp report

let () =
  Format.printf "The program under test:@.%s@.@."
    (Arde.Pretty.program_to_string program);
  (* The classic hybrid false-positives on data (an "apparent race") and
     would also flag flag itself (a "synchronization race"). *)
  show_mode Arde.Config.Helgrind_lib;
  (* With spin detection the loop over flag is found, a happens-before
     edge connects the counterpart write to the loop exit, and both
     warnings disappear. *)
  show_mode (Arde.Config.Helgrind_spin 7);
  (* Even with no library knowledge at all the result holds. *)
  show_mode (Arde.Config.Nolib_spin 7)
