(* The "universal race detector" demonstration.

   A correctly locked program is stripped of all library knowledge: the
   mutex operations are lowered to their test-and-test-and-set spinning
   implementation, exactly what a binary-level detector sees when it does
   not recognize the synchronization library.  Without spin detection
   everything looks racy; with it, the detector recovers the mutual
   exclusion from the loops alone.

   Run with: dune exec examples/unknown_library.exe *)

open Arde.Builder

let program =
  let worker =
    func "worker" ~params:[ "i" ]
      [
        blk "entry"
          [
            lock (g "m");
            load "v" (g "shared");
            addi "v1" (r "v") (imm 1);
            store (g "shared") (r "v1");
            unlock (g "m");
          ]
          exit_t;
      ]
  in
  let main =
    func "main"
      [
        blk "entry"
          [
            spawn "t0" "worker" [ imm 0 ];
            spawn "t1" "worker" [ imm 1 ];
            spawn "t2" "worker" [ imm 2 ];
          ]
          (goto "wait");
        blk "wait"
          [
            join (r "t0");
            join (r "t1");
            join (r "t2");
            load "total" (g "shared");
            cmp Eq "ok" (r "total") (imm 3);
            check (r "ok") "all increments arrived";
          ]
          exit_t;
      ]
  in
  program ~globals:[ global "m" (); global "shared" () ] ~entry:"main"
    [ main; worker ]

let () =
  let lowered = Arde.Lower.lower program in
  Format.printf
    "After lowering, the mutex is just memory operations and a spin loop:@.@.";
  let lock_fn =
    List.find (fun f -> f.Arde.Types.fname = "__lock:m") lowered.Arde.Types.funcs
  in
  Format.printf "%a@.@." Arde.Pretty.func lock_fn;
  let inst = Arde.analyze_spins ~k:7 lowered in
  Format.printf "%a@." Arde.Instrument.pp_summary inst;
  List.iter
    (fun mode ->
      let result = Arde.detect ~mode (Arde.Input.Program program) in
      Format.printf "%-16s -> %d warning context(s)@."
        (Arde.Config.mode_name mode)
        (Arde.Report.n_contexts result.Arde.Driver.merged))
    [
      Arde.Config.Helgrind_lib (* knows the library: clean *);
      Arde.Config.Nolib_spin 7 (* knows nothing, recovers everything *);
    ]
