(* Ad-hoc work queue: the kind of "high level synchronization" (task
   queues) the paper names as a major source of false positives.

   One producer fills a ring of work items and publishes a tail index;
   consumers spin until work is available, claim a slot with a CAS and
   mutate the item in place.  The program is race-free, but only the
   spin-aware detector can tell: the wait loop on (head < tail) is a
   spinning read loop, and the happens-before edge from the tail
   publication to the loop exit covers the claimed item.

   Run with: dune exec examples/task_queue.exe *)

module W = Arde_workloads

let () =
  let case =
    match W.Racey.find "task_queue/5" with
    | Some c -> c
    | None -> failwith "task_queue case missing"
  in
  let program = case.W.Racey.program in
  Format.printf "Ground truth: %s@.@."
    (match case.W.Racey.expectation with
    | Arde.Classify.Race_free -> "race-free"
    | Arde.Classify.Racy bs -> "racy on " ^ String.concat ", " bs);
  let inst = Arde.analyze_spins ~k:7 program in
  Format.printf "%a@." Arde.Instrument.pp_summary inst;
  List.iter
    (fun mode ->
      let result = Arde.detect ~mode (Arde.Input.Program program) in
      let report = result.Arde.Driver.merged in
      Format.printf "--- %s: %d context(s) ---@."
        (Arde.Config.mode_name mode)
        (Arde.Report.n_contexts report);
      List.iter
        (fun race -> Format.printf "  %a@." Arde.Report.pp_race race)
        (Arde.Report.races report))
    [ Arde.Config.Helgrind_lib; Arde.Config.Drd; Arde.Config.Helgrind_spin 7 ];
  Format.printf
    "@.The items and indices the spin-less tools complain about are all@.";
  Format.printf "protected by the queue discipline the spin edges recover.@."
