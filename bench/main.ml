(* Regenerates every table and figure of the paper's evaluation:

   T1  data-race-test results for the four detector configurations
   T2  spin-window sensitivity (k = 3, 6, 7, 8)
   T3  PARSEC program inventory
   T4  PARSEC racy contexts, programs without ad-hoc synchronization
   T5  PARSEC racy contexts, programs with ad-hoc synchronization
   T6  the combined "universal race detector" table
   F1  detector memory consumption
   F2  runtime overhead

   plus Bechamel micro-benchmarks of the pipeline stages.  Compare the
   output against EXPERIMENTS.md. *)

let section title =
  Printf.printf "\n==== %s ====\n%!" title

let tables () =
  section "Table 1: data-race-test suite (120 cases)";
  let rows1, t1 = Arde_harness.Suite_experiment.table1 () in
  print_string t1;
  section "Table 1a: failures by case category";
  print_string (Arde_harness.Suite_experiment.category_table rows1);
  section "Table 2: spinning-read-loop window sensitivity";
  let _rows, t2 = Arde_harness.Suite_experiment.table2 () in
  print_string t2;
  section
    "Table 2a (ablation): same sweep without counting condition-callee blocks";
  let ablation_options =
    Arde.Options.with_count_callee_blocks false
      Arde_harness.Suite_experiment.suite_options
  in
  let _rows, t2a =
    Arde_harness.Suite_experiment.table2 ~options:ablation_options ()
  in
  print_string t2a;
  section "Table 3: PARSEC 2.0 program inventory";
  print_string (Arde_harness.Parsec_experiment.table3 ());
  section "Table 4: racy contexts, programs without ad-hoc synchronization";
  let _r, t4 = Arde_harness.Parsec_experiment.table4 () in
  print_string t4;
  section "Table 5: racy contexts, programs with ad-hoc synchronization";
  let _r, t5 = Arde_harness.Parsec_experiment.table5 () in
  print_string t5;
  section "Table 6: universal race detector (all programs)";
  let _r, t6 = Arde_harness.Parsec_experiment.table6 () in
  print_string t6

(* The paper's stated future work, realized: identify the lock words of
   the lowered (unknown) library statically and rebuild the lockset, then
   compare the universal detector with and without it. *)
let extension_table () =
  section "Extension: universal detector + inferred lock words (future work)";
  let cases = Arde_workloads.Racey.all () in
  let rows =
    List.map
      (fun m -> Arde_harness.Suite_experiment.run_mode m cases)
      [ Arde.Config.Nolib_spin 7; Arde.Config.Nolib_spin_locks 7 ]
  in
  print_string (Arde_harness.Suite_experiment.render rows)

let figures () =
  section "Figure 1: detector memory consumption (heap words)";
  let _figs, f1, f2 = Arde_harness.Perf.run_figures ~repeats:3 () in
  print_string f1;
  section "Figure 2: runtime (ms per full run) and spin overhead ratio";
  print_string f2

(* Bechamel micro-benchmarks: one Test.make per reproduced artifact,
   exercising the pipeline stage that dominates it. *)
let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let flag_case =
    match Arde_workloads.Racey.find "adhoc_flag_w2/8" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> assert false
  in
  let compiled = Arde.Machine.compile flag_case in
  let inst = Arde.Instrument.analyze ~k:7 flag_case in
  let detect_once mode () =
    let engine = Arde.Engine.create (Arde.Config.make mode) ~instrument:(Some inst) in
    ignore
      (Arde.Machine.run
         {
           Arde.Machine.default_config with
           Arde.Machine.instrument = Some inst;
           observer = Arde.Engine.observer engine;
         }
         compiled)
  in
  let tests =
    [
      Test.make ~name:"T1:instrumentation-phase"
        (Staged.stage (fun () -> ignore (Arde.Instrument.analyze ~k:7 flag_case)));
      Test.make ~name:"T1:machine-only"
        (Staged.stage (fun () ->
             ignore (Arde.Machine.run Arde.Machine.default_config compiled)));
      Test.make ~name:"T1:hybrid-lib"
        (Staged.stage (detect_once Arde.Config.Helgrind_lib));
      Test.make ~name:"T2:hybrid-spin7"
        (Staged.stage (detect_once (Arde.Config.Helgrind_spin 7)));
      Test.make ~name:"T6:lowering"
        (Staged.stage (fun () -> ignore (Arde.Lower.lower flag_case)));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = List.map (fun t -> (Test.Elt.name (List.hd (Test.elements t)), Benchmark.all cfg instances t)) tests in
  section "Bechamel: per-stage timings (ns, monotonic clock)";
  List.iter
    (fun (name, tbl) ->
      Hashtbl.iter
        (fun _ result ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Instance.monotonic_clock result
          in
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        tbl)
    raw

(* ---- the parallel-stage / analysis-cache benchmark ----

   `bench parallel [-o PATH]` times the domain-pool per-seed stage at
   several pool widths and the analysis cache on/off, and writes the
   measurements to BENCH_parallel.json (the wire form CI archives).
   Speedups are wall-clock, so they reflect the cores of the machine
   running the benchmark — [host_cores] is recorded alongside. *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let parallel_bench ~out () =
  let module J = Arde.Json in
  let mode = Arde.Config.Nolib_spin 7 in
  (* every 15th catalog case: a cross-category sample with enough work
     per run for wall-clock timing to mean something *)
  let sample =
    List.filteri (fun i _ -> i mod 15 = 0) (Arde_workloads.Racey.all ())
  in
  let progs = List.map (fun c -> c.Arde_workloads.Racey.program) sample in
  let seeds = List.init 16 (fun i -> i + 1) in
  let opts jobs = Arde.Options.make ~seeds ~fuel:400_000 ~jobs () in
  let run_all jobs =
    List.iter
      (fun p ->
        ignore
          (Arde.detect
             ~ctx:(Arde.Driver.ctx ~options:(opts jobs) ())
             ~mode (Arde.Input.Program p)))
      progs
  in
  (* per-stage wall times, measured fresh on one representative *)
  let rep = List.hd progs in
  Arde.Analysis_cache.clear ();
  let lowered, t_lower =
    wall (fun () -> Arde.Lower.lower ~style:Arde.Lower.Realistic rep)
  in
  let _, t_instrument =
    wall (fun () -> Arde.Instrument.analyze ~k:7 lowered)
  in
  (* warm the cache so the sweep times the per-seed stage, not prepare *)
  run_all 1;
  (* widths beyond the physical cores would only measure oversubscription
     noise — skip them, but record what was skipped so a run on a small
     host is distinguishable from a run that covered everything *)
  let host_cores = Domain.recommended_domain_count () in
  let widths, skipped_widths =
    List.partition
      (fun j -> j <= host_cores)
      (List.sort_uniq compare [ 1; 2; 4; max 1 Arde.Options.default_jobs ])
  in
  let sweep = List.map (fun j -> (j, snd (wall (fun () -> run_all j)))) widths in
  let t_seq = List.assoc 1 sweep in
  (* the cache's contribution: same sequential sweep, cold every run *)
  Arde.Analysis_cache.set_enabled false;
  let (), t_nocache = wall (fun () -> run_all 1) in
  Arde.Analysis_cache.set_enabled true;
  let (), t_cached = wall (fun () -> run_all 1) in
  (* acceptance probe: a 5-seed run against the warm cache records hits *)
  Arde.Analysis_cache.reset_stats ();
  ignore
    (Arde.detect
       ~ctx:
         (Arde.Driver.ctx
            ~options:(Arde.Options.make ~seeds:[ 1; 2; 3; 4; 5 ] ())
            ())
       ~mode (Arde.Input.Program rep));
  let cs = Arde.Analysis_cache.stats () in
  let json =
    J.Obj
      [
        ("host_cores", J.Int host_cores);
        ("skipped_widths", J.List (List.map (fun j -> J.Int j) skipped_widths));
        ("default_jobs", J.Int Arde.Options.default_jobs);
        ("mode", J.String (Arde.Config.mode_name mode));
        ("workloads", J.Int (List.length progs));
        ("seeds_per_run", J.Int (List.length seeds));
        ( "stages",
          J.Obj
            [
              ("lower_s", J.Float t_lower);
              ("instrument_s", J.Float t_instrument);
              ("per_seed_stage_s", J.Float t_seq);
            ] );
        ( "jobs_sweep",
          J.List
            (List.map
               (fun (j, t) ->
                 J.Obj
                   [
                     ("jobs", J.Int j);
                     ("wall_s", J.Float t);
                     ("speedup", J.Float (t_seq /. t));
                   ])
               sweep) );
        ( "cache",
          J.Obj
            [
              ("disabled_wall_s", J.Float t_nocache);
              ("enabled_wall_s", J.Float t_cached);
              ("speedup", J.Float (t_nocache /. t_cached));
              ("five_seed_run", Arde.Analysis_cache.stats_to_json cs);
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string ~minify:false json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ---- the engine differential benchmark ----

   `bench engine [-o PATH]` replays recorded traces through the optimized
   epoch engine and the frozen reference engine, writes the rows to
   BENCH_engine.json, and exits non-zero when the CI gate fails (the
   optimized engine slower than the reference on streamcluster under
   nolib+spin(7), or any report spot-check disagreeing). *)

let engine_bench ~out () =
  let module J = Arde.Json in
  let rows = Arde_harness.Engine_bench.run ~repeats:5 () in
  section "Engine differential: optimized vs reference, per trace";
  print_string (Arde_harness.Engine_bench.render rows);
  let oc = open_out out in
  output_string oc (J.to_string ~minify:false (Arde_harness.Engine_bench.to_json rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  match Arde_harness.Engine_bench.gate rows with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "bench engine: FAIL: %s\n") failures;
      exit 1

(* ---- the machine differential benchmark ----

   `bench machine [-o PATH]` runs each workload × mode end-to-end on the
   compiled machine and on the frozen reference machine, writes the
   measurements (quiet steps/s, words/step, events/s, plus the
   straight-line zero-allocation probe) to BENCH_machine.json, and exits
   non-zero when the CI gate fails (the optimized machine slower than the
   reference on streamcluster under nolib+spin(7), any trace spot-check
   disagreeing, or the straight-line path allocating). *)

let machine_bench ~out () =
  let module J = Arde.Json in
  let results = Arde_harness.Machine_bench.run ~repeats:5 () in
  section "Machine differential: compiled vs reference, end-to-end";
  print_string (Arde_harness.Machine_bench.render results);
  let oc = open_out out in
  output_string oc
    (J.to_string ~minify:false (Arde_harness.Machine_bench.to_json results));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  match Arde_harness.Machine_bench.gate results with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "bench machine: FAIL: %s\n") failures;
      exit 1

(* ---- the record/replay benchmark ----

   `bench replay [-o PATH]` prices the recording sink against the bare
   machine's quiet fast path, and replayed detection against the live
   run it reproduces, writing both halves (plus trace size per event and
   the byte-identity verdict) to BENCH_replay.json.  Exits non-zero when
   the CI gate fails: any replayed result diverging from its live run,
   or recording overhead above 1.1x quiet on streamcluster under
   nolib+spin(7). *)

let replay_bench ~out () =
  let module J = Arde.Json in
  let rows = Arde_harness.Replay_bench.run ~repeats:5 () in
  section "Record/replay: sink overhead and replay throughput";
  print_string (Arde_harness.Replay_bench.render rows);
  let oc = open_out out in
  output_string oc
    (J.to_string ~minify:false (Arde_harness.Replay_bench.to_json rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  match Arde_harness.Replay_bench.gate rows with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "bench replay: FAIL: %s\n") failures;
      exit 1

(* ---- the prediction benchmark ----

   `bench predict [-o PATH]` differences a Predict analysis (two
   recorded executions plus the sync-preserving closure) against the
   16-seed sweep on the racy and race-free catalog under the Table-1
   modes, and prices predict-from-one-trace against the live sweep on
   swaptions, writing rows, timing and the executions-per-race summary
   to BENCH_predict.json.  Exits non-zero when the CI gate fails: a
   sweep-found race the predict run misses, a predicted race neither
   the sweep nor ground truth vouches for, predict-from-trace above
   0.25x the sweep wall clock, or an executions-per-race reduction
   below 4x. *)

let predict_bench ~out () =
  let module J = Arde.Json in
  let t = Arde_harness.Predict_bench.run () in
  section "Prediction: coverage, soundness and cost vs the 16-seed sweep";
  print_string (Arde_harness.Predict_bench.render t);
  let oc = open_out out in
  output_string oc
    (J.to_string ~minify:false (Arde_harness.Predict_bench.to_json t));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  match Arde_harness.Predict_bench.gate t with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "bench predict: FAIL: %s\n") failures;
      exit 1

(* ---- golden-trace fixture generator ----

   `bench fixtures [-o PATH]` runs the full fixture enumeration
   (Trace_fixtures.groups) through the current machine and writes one
   summary line per run.  The committed file is the machine's correctness
   baseline: test_machine_diff replays the same enumeration and asserts
   every trace hash, length, step count and outcome is identical. *)

let fixtures ~impl ~out () =
  let t0 = Unix.gettimeofday () in
  let rows = Arde_harness.Trace_fixtures.run_all impl in
  Arde_harness.Trace_fixtures.write_file out rows;
  Printf.printf "wrote %s (%d fixtures, %.1fs)\n" out (List.length rows)
    (Unix.gettimeofday () -. t0)

(* ---- the serve load benchmark ----

   `bench serve [-o PATH]` starts an in-process daemon, drives it with
   concurrent clients over a mixed repeated/unique workload (analysis-
   heavy PARSEC programs under the lowering mode, plus unit-suite
   smalls), and compares served throughput against one-shot `arde run
   --format json` subprocess invocations of the same request list — the
   comparison the server exists to win: a one-shot process pays startup,
   parsing and the whole static phase on every request, while the
   daemon's resident caches reduce a repeat submission to per-seed
   execution.  Round 0 is the cold round (every program unseen); rounds
   1+ are the warm phase, and the headline number is warm-phase served
   throughput over one-shot throughput.  Writes BENCH_serve.json; exits
   non-zero when the CI gate fails (any well-formed request refused or
   dropped, or warm-cache speedup below 1.0x). *)

let serve_bench ~out () =
  let module J = Arde.Json in
  let module P = Arde_server.Protocol in
  let module S = Arde_server.Server in
  let module C = Arde_server.Client in
  let module W = Arde_workloads in
  let clients = 4 and rounds = 4 in
  let seeds = 2 and fuel = 20_000 in
  let options = Arde.Options.make ~seeds:(List.init seeds (fun i -> i + 1)) ~fuel () in
  let parsec_reqs =
    List.filter_map
      (fun name ->
        match W.Catalog.find name with
        | Some (W.Catalog.Parsec (_, p)) ->
            Some (name, Arde.Pretty.program_to_string p,
                  Arde.Config.Nolib_spin 7)
        | _ -> None)
      [ "x264"; "dedup"; "facesim"; "ferret"; "vips"; "raytrace" ]
  in
  let small_reqs =
    let rec take n = function
      | x :: tl when n > 0 -> x :: take (n - 1) tl
      | _ -> []
    in
    List.map
      (fun c ->
        (c.W.Racey.name, Arde.Pretty.program_to_string c.W.Racey.program,
         Arde.Config.Helgrind_spin 7))
      (take 4 (W.Racey.all ()))
  in
  let one_round = parsec_reqs @ small_reqs in
  let requests =
    List.concat
      (List.init rounds (fun round ->
           List.map (fun r -> (round, r)) one_round))
  in
  let n_requests = List.length requests in

  (* ---- served phase: cold daemon, concurrent clients ---- *)
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "arde-bench-%d.sock" (Unix.getpid ()))
  in
  (* One worker per client: each worker holds one request in flight, so
     a narrower fleet would measure queue wait, not serving speed. *)
  let srv =
    match
      S.create
        (S.config ~workers:clients ~max_pending:256 ~socket_path:path ())
    with
    | Ok t -> t
    | Error e ->
        prerr_endline ("bench serve: " ^ e);
        exit 1
  in
  let runner = Domain.spawn (fun () -> S.run srv) in
  let indexed = List.mapi (fun i r -> (i, r)) requests in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init clients (fun cnum ->
        Domain.spawn (fun () ->
            match C.connect ~endpoint:(C.Unix_socket path) () with
            | Error e -> [ `Transport ("connect: " ^ e) ]
            | Ok cl ->
                Fun.protect
                  ~finally:(fun () -> C.close cl)
                  (fun () ->
                    List.filter_map
                      (fun (i, (round, (name, text, mode))) ->
                        if i mod clients <> cnum then None
                        else
                          let s = Unix.gettimeofday () in
                          let r = C.run cl ~program:text ~mode ~options () in
                          let dt = Unix.gettimeofday () -. s in
                          Some
                            (match r with
                            | Ok resp when P.response_ok resp -> `Ok (round, dt)
                            | Ok resp ->
                                `Refused
                                  (Printf.sprintf "%s: %s" name
                                     (match P.response_error resp with
                                     | Some (c, m) -> c ^ ": " ^ m
                                     | None -> "refused"))
                            | Error e -> `Transport (name ^ ": " ^ e)))
                      indexed)))
  in
  let results = List.concat_map Domain.join domains in
  let served_wall = Unix.gettimeofday () -. t0 in
  (* Detection now happens in worker processes: the daemon-side cache
     story lives in the supervision stats (and each worker's response
     carries its own analysis-cache delta). *)
  let supervision =
    match C.connect ~endpoint:(C.Unix_socket path) () with
    | Error _ -> J.Null
    | Ok cl ->
        Fun.protect
          ~finally:(fun () -> C.close cl)
          (fun () ->
            match C.stats cl with
            | Ok resp ->
                Option.value ~default:J.Null
                  (Option.bind (J.member "stats" resp)
                     (J.member "supervision"))
            | Error _ -> J.Null)
  in
  (* ---- wire phase: JSON vs binary framing on the warm daemon ----
     The same x264 record-mode request repeated on each wire, one quiet
     sequential client per wire against the already-warm daemon, so the
     measured difference is framing cost: on the JSON wire the recorded
     trace rides base64-inside-JSON (encode, escape, re-lex, decode per
     response); on the binary wire it rides as raw length-prefixed
     bytes.  Gates on binary p50 <= JSON p50 (small tolerance for
     scheduler noise). *)
  let wire_repeats = 24 in
  let wire_program, wire_mode =
    match parsec_reqs with
    | (_, text, mode) :: _ -> (text, mode)
    | [] ->
        prerr_endline "bench serve: no parsec programs for the wire phase";
        exit 1
  in
  let wire_phase wire =
    match C.connect ~wire ~endpoint:(C.Unix_socket path) () with
    | Error e -> Error ("connect: " ^ e)
    | Ok cl ->
        Fun.protect
          ~finally:(fun () -> C.close cl)
          (fun () ->
            let one () =
              let s = Unix.gettimeofday () in
              match
                C.run cl ~record:true ~program:wire_program ~mode:wire_mode
                  ~options ()
              with
              | Ok resp when P.response_ok resp ->
                  Ok (Unix.gettimeofday () -. s)
              | Ok resp ->
                  Error
                    (match P.response_error resp with
                    | Some (c, m) -> c ^ ": " ^ m
                    | None -> "refused")
              | Error e -> Error e
            in
            (* Two untimed warmups absorb first-touch effects (connection
               buffers, record-path code pages) before measuring. *)
            match (one (), one ()) with
            | Error e, _ | _, Error e -> Error e
            | Ok _, Ok _ ->
                let rec go n acc =
                  if n = 0 then Ok (List.rev acc)
                  else
                    match one () with
                    | Ok dt -> go (n - 1) (dt :: acc)
                    | Error e -> Error e
                in
                go wire_repeats [])
  in
  let wire_json_lat = wire_phase P.Json in
  let wire_binary_lat = wire_phase P.Binary in
  S.initiate_drain srv;
  Domain.join runner;

  (* ---- restart phase: the persistent bundle store across daemons ----
     Three sequential rounds of the same mix — cold (fresh daemon, empty
     caches), warm (same daemon again), restart-warm (a NEW daemon on
     the same store directory) — measured with the store on and off.
     With the store on, the restarted daemon reloads prepared bundles
     from disk instead of recomputing, so its first round should run at
     near-warm speed; with it off, a restart is as expensive as a cold
     start.  Gates: every round's results byte-identical, restart-warm
     >= 0.8x warm (store on), and store-on restart-warm >= 2x
     restart-cold (the store-off restarted daemon's first pass). *)
  let rec rm_rf p =
    match Unix.lstat p with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun e -> rm_rf (Filename.concat p e))
          (try Sys.readdir p with Sys_error _ -> [||]);
        (try Unix.rmdir p with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  in
  let restart_store_dir = path ^ ".store" in
  let restart_path = path ^ ".restart" in
  let with_restart_daemon ?store_dir f =
    match
      S.create
        (S.config ~workers:1 ~max_pending:256 ?store_dir
           ~socket_path:restart_path ())
    with
    | Error e ->
        prerr_endline ("bench serve: restart: " ^ e);
        exit 1
    | Ok t ->
        let r = Domain.spawn (fun () -> S.run t) in
        Fun.protect
          ~finally:(fun () ->
            S.initiate_drain t;
            Domain.join r)
          (fun () -> f ())
  in
  (* The restart rounds use detection-weight requests (8 seeds, 60k
     fuel) and walk the mix [restart_passes] times per round: a round is
     serving traffic, and the disk load in the restarted daemon is paid
     once per program, not per request.  Every round reports both its
     full-round throughput and its first-pass throughput; the
     restart-warm gate compares full rounds (steady traffic, store on),
     while the restart-cold baseline is the store-off restarted daemon's
     FIRST pass — the only pass on which every program is genuinely
     unseen again. *)
  let restart_options =
    Arde.Options.make ~seeds:(List.init 8 (fun i -> i + 1)) ~fuel:60_000 ()
  in
  let restart_passes = 4 in
  let restart_round label =
    match C.connect ~endpoint:(C.Unix_socket restart_path) () with
    | Error e ->
        Printf.eprintf "bench serve: restart %s: %s\n" label e;
        exit 1
    | Ok cl ->
        Fun.protect
          ~finally:(fun () -> C.close cl)
          (fun () ->
            List.concat_map (fun _ -> one_round)
              (List.init restart_passes Fun.id)
            |> List.map
              (fun (name, text, mode) ->
                let s = Unix.gettimeofday () in
                match C.run cl ~program:text ~mode ~options:restart_options () with
                | Ok resp when P.response_ok resp ->
                    let dt = Unix.gettimeofday () -. s in
                    ( name,
                      dt,
                      J.to_string
                        (Option.value ~default:J.Null (J.member "result" resp))
                    )
                | Ok resp ->
                    Printf.eprintf "bench serve: restart %s: %s refused: %s\n"
                      label name
                      (match P.response_error resp with
                      | Some (c, m) -> c ^ ": " ^ m
                      | None -> "refused");
                    exit 1
                | Error e ->
                    Printf.eprintf "bench serve: restart %s: %s: %s\n" label
                      name e;
                    exit 1))
    in
  let restart_store_stats = ref J.Null in
  let fetch_store_stats () =
    match C.connect ~endpoint:(C.Unix_socket restart_path) () with
    | Error _ -> J.Null
    | Ok cl ->
        Fun.protect
          ~finally:(fun () -> C.close cl)
          (fun () ->
            match C.stats cl with
            | Ok resp ->
                Option.value ~default:J.Null
                  (Option.bind (J.member "stats" resp) (fun s ->
                       Option.bind (J.member "supervision" s)
                         (J.member "store")))
            | Error _ -> J.Null)
  in
  let restart_phase ~store =
    let store_dir = if store then Some restart_store_dir else None in
    if store then rm_rf restart_store_dir;
    let cold, warm =
      with_restart_daemon ?store_dir (fun () ->
          let cold = restart_round "cold" in
          let warm = restart_round "warm" in
          (cold, warm))
    in
    let restart =
      with_restart_daemon ?store_dir (fun () ->
          let r = restart_round "restart-warm" in
          if store then restart_store_stats := fetch_store_stats ();
          r)
    in
    (cold, warm, restart)
  in
  let on_cold, on_warm, on_restart = restart_phase ~store:true in
  let off_cold, off_warm, off_restart = restart_phase ~store:false in
  rm_rf restart_store_dir;
  let round_rps round =
    let wall = List.fold_left (fun a (_, dt, _) -> a +. dt) 0. round in
    if wall > 0. then float_of_int (List.length round) /. wall else 0.
  in
  let first_pass round =
    let n = List.length one_round in
    List.filteri (fun i _ -> i < n) round
  in
  (* Result identity across every round and both store configurations:
     the store must be invisible in the responses. *)
  let restart_identical =
    List.for_all
      (fun ((name, _, r0) : string * float * string) ->
        List.for_all
          (fun round ->
            List.exists
              (fun (n, _, r) -> n = name && r = r0)
              round)
          [ on_warm; on_restart; off_cold; off_warm; off_restart ])
      on_cold
  in
  let restart_warm_ratio =
    let w = round_rps on_warm in
    if w > 0. then round_rps on_restart /. w else 0.
  in
  let restart_on_off_ratio =
    (* Store-on restart round (steady traffic) vs restart-cold: the
       store-off restarted daemon's first pass, where every prepared
       bundle has to be recomputed from scratch. *)
    let off = round_rps (first_pass off_restart) in
    if off > 0. then round_rps on_restart /. off else 0.
  in
  let restart_pass =
    restart_identical && restart_warm_ratio >= 0.8
    && restart_on_off_ratio >= 2.0
  in
  let latencies =
    List.filter_map (function `Ok rd -> Some rd | _ -> None) results
  in
  let refused =
    List.filter_map (function `Refused m -> Some m | _ -> None) results
  in
  let dropped =
    List.filter_map (function `Transport m -> Some m | _ -> None) results
  in
  let warm = List.filter_map
      (fun (round, dt) -> if round > 0 then Some dt else None) latencies in
  let cold = List.filter_map
      (fun (round, dt) -> if round = 0 then Some dt else None) latencies in

  (* ---- one-shot baseline: `arde run --format json` subprocesses ----
     One subprocess per request of one round's mix: per-request one-shot
     cost is round-independent (cold every time), so one round measures
     it.  Falls back to in-process cold-cache detection when the CLI
     binary is not next to the bench (recorded in the artifact). *)
  let cli_binary =
    match Sys.getenv_opt "ARDE_BIN" with
    | Some p when Sys.file_exists p -> Some p
    | Some _ | None ->
        let sibling =
          Filename.concat
            (Filename.dirname (Filename.dirname Sys.executable_name))
            "bin/arde_cli.exe"
        in
        if Sys.file_exists sibling then Some sibling else None
  in
  let oneshot_kind, oneshot_wall =
    match cli_binary with
    | Some bin ->
        let files =
          List.map
            (fun (name, text, mode) ->
              let slug =
                String.map (fun c -> if c = '/' then '_' else c) name
              in
              let file = Filename.temp_file ("arde-bench-" ^ slug) ".tir" in
              let oc = open_out file in
              output_string oc text;
              close_out oc;
              (name, file, mode))
            one_round
        in
        Fun.protect
          ~finally:(fun () ->
            List.iter (fun (_, f, _) -> try Sys.remove f with Sys_error _ -> ())
              files)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            List.iter
              (fun (name, file, mode) ->
                let cmd =
                  Printf.sprintf
                    "%s run %s -m %s --seeds %d --fuel %d --format json > /dev/null"
                    (Filename.quote bin) (Filename.quote file)
                    (Filename.quote (Arde.Config.mode_id mode))
                    seeds fuel
                in
                let rc = Sys.command cmd in
                if rc > 3 then begin
                  Printf.eprintf
                    "bench serve: one-shot baseline failed on %s (exit %d)\n"
                    name rc;
                  exit 1
                end)
              files;
            ("subprocess", Unix.gettimeofday () -. t0))
    | None ->
        prerr_endline
          "bench serve: arde binary not found (set ARDE_BIN); falling back \
           to in-process baseline";
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun (_, text, mode) ->
            Arde.Analysis_cache.clear ();
            match Arde.Parse.program text with
            | Error _ -> ()
            | Ok p ->
                ignore
                  (Arde.detect
                     ~ctx:(Arde.Driver.ctx ~options ())
                     ~mode (Arde.Input.Program p)))
          one_round;
        ("in-process", Unix.gettimeofday () -. t0)
  in

  (* ---- chaos phase: the same serving stack under injected crashes ----
     A fresh daemon with a fault plan that SIGKILLs each worker on every
     5th request; clients retry with bounded backoff.  The phase gates on
     crash-only behaviour, not speed: every request completes, crashes
     and restarts stay proportional to the plan, and a crash bundle is
     sealed for each kill. *)
  let chaos_kill_every = 5 in
  let chaos_path = path ^ ".chaos" in
  let chaos_srv =
    match
      S.create
        (S.config ~workers:2 ~max_pending:256 ~restart_backoff_ms:20
           ~chaos_plan:(Printf.sprintf "kill:%d" chaos_kill_every)
           ~socket_path:chaos_path ())
    with
    | Ok t -> t
    | Error e ->
        prerr_endline ("bench serve: chaos: " ^ e);
        exit 1
  in
  let chaos_runner = Domain.spawn (fun () -> S.run chaos_srv) in
  let chaos_indexed = List.mapi (fun i r -> (i, r)) one_round in
  let chaos_t0 = Unix.gettimeofday () in
  let chaos_domains =
    List.init clients (fun cnum ->
        Domain.spawn (fun () ->
            List.filter_map
              (fun (i, (name, text, mode)) ->
                if i mod clients <> cnum then None
                else
                  let policy =
                    C.retry_policy ~attempts:10 ~backoff_ms:10
                      ~max_backoff_ms:200 ~jitter_seed:(cnum + i) ()
                  in
                  let outcome, retries =
                    C.submit_with_retry ~endpoint:(C.Unix_socket chaos_path) ~policy
                      ~program:text ~mode ~options ()
                  in
                  Some
                    (match outcome with
                    | Ok resp when P.response_ok resp -> `Ok retries
                    | Ok resp ->
                        `Failed
                          (Printf.sprintf "%s: %s" name
                             (match P.response_error resp with
                             | Some (c, m) -> c ^ ": " ^ m
                             | None -> "refused"))
                    | Error e -> `Failed (name ^ ": " ^ e)))
              chaos_indexed))
  in
  let chaos_results = List.concat_map Domain.join chaos_domains in
  let chaos_wall = Unix.gettimeofday () -. chaos_t0 in
  let chaos_sup =
    match C.connect ~endpoint:(C.Unix_socket chaos_path) () with
    | Error _ -> J.Null
    | Ok cl ->
        Fun.protect
          ~finally:(fun () -> C.close cl)
          (fun () ->
            match C.stats cl with
            | Ok resp ->
                Option.value ~default:J.Null
                  (Option.bind (J.member "stats" resp)
                     (J.member "supervision"))
            | Error _ -> J.Null)
  in
  S.initiate_drain chaos_srv;
  Domain.join chaos_runner;
  let chaos_ok =
    List.length (List.filter (function `Ok _ -> true | _ -> false) chaos_results)
  in
  let chaos_failed =
    List.filter_map (function `Failed m -> Some m | _ -> None) chaos_results
  in
  let chaos_retries =
    List.fold_left
      (fun acc -> function `Ok r -> acc + r | _ -> acc)
      0 chaos_results
  in
  let chaos_int key =
    match Option.bind (J.member key chaos_sup) J.to_int with
    | Some n -> n
    | None -> -1
  in
  let chaos_crashes = chaos_int "crashes"
  and chaos_restarts = chaos_int "restarts"
  and chaos_bundles = chaos_int "bundles_sealed" in
  (* Every kill is one crash; executions = requests + retries.  Allow +2
     slack for kills landing between requests of different clients. *)
  let chaos_crash_bound =
    ((List.length one_round + chaos_retries) / chaos_kill_every) + 2
  in
  let chaos_pass =
    chaos_failed = [] && chaos_crashes > 0
    && chaos_crashes <= chaos_crash_bound
    && chaos_restarts <= chaos_crash_bound
    && chaos_bundles > 0
  in

  let pctls sample =
    let sorted = Array.of_list (List.sort compare sample) in
    let pctl q =
      let n = Array.length sorted in
      if n = 0 then 0.
      else
        sorted.(max 0
                  (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))
    in
    (pctl 0.50, pctl 0.95, pctl 0.99, pctl 1.0)
  in
  let latency_json sample =
    let p50, p95, p99, pmax = pctls sample in
    J.Obj
      [
        ("p50", J.Float (1000. *. p50));
        ("p95", J.Float (1000. *. p95));
        ("p99", J.Float (1000. *. p99));
        ("max", J.Float (1000. *. pmax));
      ]
  in
  let wire_p50 = function
    | Ok sample ->
        let p50, _, _, _ = pctls sample in
        Some p50
    | Error _ -> None
  in
  let wire_json_p50 = wire_p50 wire_json_lat
  and wire_binary_p50 = wire_p50 wire_binary_lat in
  let wire_pass =
    match (wire_json_p50, wire_binary_p50) with
    | Some j, Some b -> b <= j *. 1.05
    | _ -> false
  in
  let wire_side_json = function
    | Ok sample ->
        let sum = List.fold_left ( +. ) 0. sample in
        J.Obj
          [
            ("requests", J.Int (List.length sample));
            ("latency_ms", latency_json sample);
            ( "throughput_rps",
              J.Float
                (if sum > 0. then float_of_int (List.length sample) /. sum
                 else 0.) );
          ]
    | Error e -> J.Obj [ ("error", J.String e) ]
  in
  let served_rps =
    float_of_int (List.length latencies) /. served_wall
  in
  (* The warm phase's own throughput: the warm rounds ran concurrently
     with the cold round, so sum per-request latency and divide by the
     effective parallelism instead of slicing wall time. *)
  let sum = List.fold_left ( +. ) 0. in
  let phase_rps sample =
    if sample = [] then 0.
    else
      let busy = sum sample /. float_of_int clients in
      float_of_int (List.length sample) /. busy
  in
  let warm_rps = phase_rps warm and cold_rps = phase_rps cold in
  let oneshot_rps = float_of_int (List.length one_round) /. oneshot_wall in
  let overall_speedup =
    if oneshot_rps > 0. then served_rps /. oneshot_rps else 0.
  in
  let warm_speedup = if oneshot_rps > 0. then warm_rps /. oneshot_rps else 0. in
  let ci_pass =
    refused = [] && dropped = [] && warm_speedup >= 1.0 && chaos_pass
    && wire_pass && restart_pass
  in
  let all_lat = List.map snd latencies in
  let json =
    J.Obj
      [
        ("bench", J.String "serve");
        ( "host",
          J.Obj [ ("cores", J.Int (Domain.recommended_domain_count ())) ] );
        ( "config",
          J.Obj
            [
              ("clients", J.Int clients);
              ("workers", J.Int clients);
              ("rounds", J.Int rounds);
              ("requests", J.Int n_requests);
              ("unique_programs", J.Int (List.length one_round));
              ("parsec_mode",
               J.String (Arde.Config.mode_id (Arde.Config.Nolib_spin 7)));
              ("seeds_per_request", J.Int seeds);
              ("fuel", J.Int fuel);
              ("max_pending", J.Int 256);
            ] );
        ( "served",
          J.Obj
            [
              ("wall_s", J.Float served_wall);
              ("throughput_rps", J.Float served_rps);
              ("latency_ms", latency_json all_lat);
              ( "cold_round",
                J.Obj
                  [
                    ("requests", J.Int (List.length cold));
                    ("throughput_rps", J.Float cold_rps);
                    ("latency_ms", latency_json cold);
                  ] );
              ( "warm_rounds",
                J.Obj
                  [
                    ("requests", J.Int (List.length warm));
                    ("throughput_rps", J.Float warm_rps);
                    ("latency_ms", latency_json warm);
                  ] );
              ("ok", J.Int (List.length latencies));
              ("refused", J.Int (List.length refused));
              ("dropped", J.Int (List.length dropped));
              ("supervision", supervision);
            ] );
        ( "oneshot",
          J.Obj
            [
              ("kind", J.String oneshot_kind);
              ("requests", J.Int (List.length one_round));
              ("wall_s", J.Float oneshot_wall);
              ("throughput_rps", J.Float oneshot_rps);
            ] );
        ( "wire",
          J.Obj
            [
              ("program", J.String "x264");
              ("mode", J.String (Arde.Config.mode_id wire_mode));
              ("record", J.Bool true);
              ("repeats", J.Int wire_repeats);
              ("json", wire_side_json wire_json_lat);
              ("binary", wire_side_json wire_binary_lat);
              ( "json_over_binary_p50",
                match (wire_json_p50, wire_binary_p50) with
                | Some j, Some b when b > 0. -> J.Float (j /. b)
                | _ -> J.Null );
              ("pass", J.Bool wire_pass);
            ] );
        ( "restart",
          let round_json round =
            let lats = List.map (fun (_, dt, _) -> dt) round in
            J.Obj
              [
                ("requests", J.Int (List.length round));
                ("throughput_rps", J.Float (round_rps round));
                ("first_pass_rps", J.Float (round_rps (first_pass round)));
                ("latency_ms", latency_json lats);
              ]
          in
          J.Obj
            [
              ( "requests_per_round",
                J.Int (List.length one_round * restart_passes) );
              ("passes_per_round", J.Int restart_passes);
              ("seeds_per_request", J.Int 8);
              ("fuel", J.Int 60_000);
              ( "store_on",
                J.Obj
                  [
                    ("cold", round_json on_cold);
                    ("warm", round_json on_warm);
                    ("restart_warm", round_json on_restart);
                  ] );
              ( "store_off",
                J.Obj
                  [
                    ("cold", round_json off_cold);
                    ("warm", round_json off_warm);
                    ("restart_warm", round_json off_restart);
                  ] );
              ("store_stats", !restart_store_stats);
              ("results_identical", J.Bool restart_identical);
              ("restart_warm_over_warm", J.Float restart_warm_ratio);
              ("restart_warm_over_restart_cold", J.Float restart_on_off_ratio);
              ("min_restart_warm_over_warm", J.Float 0.8);
              ("min_restart_warm_over_restart_cold", J.Float 2.0);
              ("pass", J.Bool restart_pass);
            ] );
        ( "chaos",
          J.Obj
            [
              ("plan", J.String (Printf.sprintf "kill:%d" chaos_kill_every));
              ("requests", J.Int (List.length one_round));
              ("ok", J.Int chaos_ok);
              ("failed", J.Int (List.length chaos_failed));
              ("retries", J.Int chaos_retries);
              ("wall_s", J.Float chaos_wall);
              ( "throughput_rps",
                J.Float (float_of_int chaos_ok /. chaos_wall) );
              ("supervision", chaos_sup);
              ("pass", J.Bool chaos_pass);
            ] );
        ("speedup", J.Float warm_speedup);
        ("overall_speedup", J.Float overall_speedup);
        ( "gate",
          J.Obj
            [
              ("min_warm_speedup_ci", J.Float 1.0);
              ("target_warm_speedup", J.Float 1.5);
              ("pass_ci", J.Bool ci_pass);
              ("meets_target", J.Bool (ci_pass && warm_speedup >= 1.5));
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string ~minify:false json);
  output_char oc '\n';
  close_out oc;
  section "Serve: daemon vs one-shot `arde run`, same request mix";
  let _, w95, _, _ = pctls warm in
  let a50, a95, a99, _ = pctls all_lat in
  Printf.printf
    "%d requests, %d clients: served %.2f req/s (p50 %.0f ms, p95 %.0f ms, \
     p99 %.0f ms)\n\
     warm rounds %.2f req/s (p95 %.0f ms); one-shot (%s) %.2f req/s\n\
     warm-cache speedup %.2fx (overall %.2fx)\n"
    n_requests clients served_rps (1000. *. a50) (1000. *. a95) (1000. *. a99)
    warm_rps (1000. *. w95) oneshot_kind oneshot_rps warm_speedup
    overall_speedup;
  (match (wire_json_p50, wire_binary_p50) with
  | Some j, Some b ->
      Printf.printf
        "wire (x264, record, %d repeats): json p50 %.1f ms, binary p50 %.1f \
         ms (%.2fx)\n"
        wire_repeats (1000. *. j) (1000. *. b)
        (if b > 0. then j /. b else 0.)
  | _ ->
      let err = function Error e -> e | Ok _ -> "ok" in
      Printf.printf "wire phase failed: json %s, binary %s\n"
        (err wire_json_lat) (err wire_binary_lat));
  Printf.printf
    "restart: store on — cold %.2f, warm %.2f, restart-warm %.2f req/s; \
     restart-cold (store off, first pass) %.2f req/s\n\
     restart-warm/warm %.2fx (gate >= 0.8), restart-warm/restart-cold \
     %.2fx (gate >= 2.0), results %s\n"
    (round_rps (first_pass on_cold)) (round_rps on_warm)
    (round_rps on_restart)
    (round_rps (first_pass off_restart))
    restart_warm_ratio restart_on_off_ratio
    (if restart_identical then "identical" else "DIVERGED");
  Printf.printf
    "chaos (kill:%d): %d/%d ok, %d retries, %d crashes, %d restarts, %d \
     bundles sealed\n"
    chaos_kill_every chaos_ok (List.length one_round) chaos_retries
    chaos_crashes chaos_restarts chaos_bundles;
  Printf.printf "wrote %s\n" out;
  List.iter (Printf.eprintf "bench serve: refused: %s\n") refused;
  List.iter (Printf.eprintf "bench serve: dropped: %s\n") dropped;
  List.iter (Printf.eprintf "bench serve: chaos failed: %s\n") chaos_failed;
  if not ci_pass then begin
    Printf.eprintf
      "bench serve: FAIL: %d refused, %d dropped, warm speedup %.2fx, chaos \
       %s, wire %s, restart %s (gate: 0 refused, 0 dropped, >= 1.0x, chaos \
       pass, binary p50 <= json p50, restart-warm >= 0.8x warm and >= 2x \
       restart-cold with identical results)\n"
      (List.length refused) (List.length dropped) warm_speedup
      (if chaos_pass then "pass" else "FAIL")
      (if wire_pass then "pass" else "FAIL")
      (if restart_pass then "pass" else "FAIL");
    exit 1
  end

let () =
  (* The serve benchmark hosts a supervisor whose workers re-exec this
     very binary; the hook must intercept the marker first. *)
  Arde_server.Worker.hook ();
  let args = List.tl (Array.to_list Sys.argv) in
  let rec out_path = function
    | "-o" :: p :: _ -> p
    | _ :: rest -> out_path rest
    | [] -> "BENCH_parallel.json"
  in
  if List.mem "fixtures" args then
    fixtures
      ~impl:
        (if List.mem "--ref" args then
           Arde_harness.Trace_fixtures.reference_machine
         else Arde_harness.Trace_fixtures.current_machine)
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "test/fixtures/machine_traces.txt"
        | p -> p)
      ()
  else if List.mem "machine" args then
    machine_bench
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "BENCH_machine.json"
        | p -> p)
      ()
  else if List.mem "engine" args then
    engine_bench
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "BENCH_engine.json"
        | p -> p)
      ()
  else if List.mem "replay" args then
    replay_bench
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "BENCH_replay.json"
        | p -> p)
      ()
  else if List.mem "predict" args then
    predict_bench
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "BENCH_predict.json"
        | p -> p)
      ()
  else if List.mem "parallel" args then parallel_bench ~out:(out_path args) ()
  else if List.mem "serve" args then
    serve_bench
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "BENCH_serve.json"
        | p -> p)
      ()
  else begin
    tables ();
    extension_table ();
    figures ();
    bechamel_suite ()
  end
