(* Regenerates every table and figure of the paper's evaluation:

   T1  data-race-test results for the four detector configurations
   T2  spin-window sensitivity (k = 3, 6, 7, 8)
   T3  PARSEC program inventory
   T4  PARSEC racy contexts, programs without ad-hoc synchronization
   T5  PARSEC racy contexts, programs with ad-hoc synchronization
   T6  the combined "universal race detector" table
   F1  detector memory consumption
   F2  runtime overhead

   plus Bechamel micro-benchmarks of the pipeline stages.  Compare the
   output against EXPERIMENTS.md. *)

let section title =
  Printf.printf "\n==== %s ====\n%!" title

let tables () =
  section "Table 1: data-race-test suite (120 cases)";
  let rows1, t1 = Arde_harness.Suite_experiment.table1 () in
  print_string t1;
  section "Table 1a: failures by case category";
  print_string (Arde_harness.Suite_experiment.category_table rows1);
  section "Table 2: spinning-read-loop window sensitivity";
  let _rows, t2 = Arde_harness.Suite_experiment.table2 () in
  print_string t2;
  section
    "Table 2a (ablation): same sweep without counting condition-callee blocks";
  let ablation_options =
    Arde.Options.with_count_callee_blocks false
      Arde_harness.Suite_experiment.suite_options
  in
  let _rows, t2a =
    Arde_harness.Suite_experiment.table2 ~options:ablation_options ()
  in
  print_string t2a;
  section "Table 3: PARSEC 2.0 program inventory";
  print_string (Arde_harness.Parsec_experiment.table3 ());
  section "Table 4: racy contexts, programs without ad-hoc synchronization";
  let _r, t4 = Arde_harness.Parsec_experiment.table4 () in
  print_string t4;
  section "Table 5: racy contexts, programs with ad-hoc synchronization";
  let _r, t5 = Arde_harness.Parsec_experiment.table5 () in
  print_string t5;
  section "Table 6: universal race detector (all programs)";
  let _r, t6 = Arde_harness.Parsec_experiment.table6 () in
  print_string t6

(* The paper's stated future work, realized: identify the lock words of
   the lowered (unknown) library statically and rebuild the lockset, then
   compare the universal detector with and without it. *)
let extension_table () =
  section "Extension: universal detector + inferred lock words (future work)";
  let cases = Arde_workloads.Racey.all () in
  let rows =
    List.map
      (fun m -> Arde_harness.Suite_experiment.run_mode m cases)
      [ Arde.Config.Nolib_spin 7; Arde.Config.Nolib_spin_locks 7 ]
  in
  print_string (Arde_harness.Suite_experiment.render rows)

let figures () =
  section "Figure 1: detector memory consumption (heap words)";
  let _figs, f1, f2 = Arde_harness.Perf.run_figures ~repeats:3 () in
  print_string f1;
  section "Figure 2: runtime (ms per full run) and spin overhead ratio";
  print_string f2

(* Bechamel micro-benchmarks: one Test.make per reproduced artifact,
   exercising the pipeline stage that dominates it. *)
let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let flag_case =
    match Arde_workloads.Racey.find "adhoc_flag_w2/8" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> assert false
  in
  let compiled = Arde.Machine.compile flag_case in
  let inst = Arde.Instrument.analyze ~k:7 flag_case in
  let detect_once mode () =
    let engine = Arde.Engine.create (Arde.Config.make mode) ~instrument:(Some inst) in
    ignore
      (Arde.Machine.run
         {
           Arde.Machine.default_config with
           Arde.Machine.instrument = Some inst;
           observer = Arde.Engine.observer engine;
         }
         compiled)
  in
  let tests =
    [
      Test.make ~name:"T1:instrumentation-phase"
        (Staged.stage (fun () -> ignore (Arde.Instrument.analyze ~k:7 flag_case)));
      Test.make ~name:"T1:machine-only"
        (Staged.stage (fun () ->
             ignore (Arde.Machine.run Arde.Machine.default_config compiled)));
      Test.make ~name:"T1:hybrid-lib"
        (Staged.stage (detect_once Arde.Config.Helgrind_lib));
      Test.make ~name:"T2:hybrid-spin7"
        (Staged.stage (detect_once (Arde.Config.Helgrind_spin 7)));
      Test.make ~name:"T6:lowering"
        (Staged.stage (fun () -> ignore (Arde.Lower.lower flag_case)));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = List.map (fun t -> (Test.Elt.name (List.hd (Test.elements t)), Benchmark.all cfg instances t)) tests in
  section "Bechamel: per-stage timings (ns, monotonic clock)";
  List.iter
    (fun (name, tbl) ->
      Hashtbl.iter
        (fun _ result ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Instance.monotonic_clock result
          in
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        tbl)
    raw

(* ---- the parallel-stage / analysis-cache benchmark ----

   `bench parallel [-o PATH]` times the domain-pool per-seed stage at
   several pool widths and the analysis cache on/off, and writes the
   measurements to BENCH_parallel.json (the wire form CI archives).
   Speedups are wall-clock, so they reflect the cores of the machine
   running the benchmark — [host_cores] is recorded alongside. *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let parallel_bench ~out () =
  let module J = Arde.Json in
  let mode = Arde.Config.Nolib_spin 7 in
  (* every 15th catalog case: a cross-category sample with enough work
     per run for wall-clock timing to mean something *)
  let sample =
    List.filteri (fun i _ -> i mod 15 = 0) (Arde_workloads.Racey.all ())
  in
  let progs = List.map (fun c -> c.Arde_workloads.Racey.program) sample in
  let seeds = List.init 16 (fun i -> i + 1) in
  let opts jobs = Arde.Options.make ~seeds ~fuel:400_000 ~jobs () in
  let run_all jobs =
    List.iter (fun p -> ignore (Arde.detect ~options:(opts jobs) mode p)) progs
  in
  (* per-stage wall times, measured fresh on one representative *)
  let rep = List.hd progs in
  Arde.Analysis_cache.clear ();
  let lowered, t_lower =
    wall (fun () -> Arde.Lower.lower ~style:Arde.Lower.Realistic rep)
  in
  let _, t_instrument =
    wall (fun () -> Arde.Instrument.analyze ~k:7 lowered)
  in
  (* warm the cache so the sweep times the per-seed stage, not prepare *)
  run_all 1;
  (* widths beyond the physical cores would only measure oversubscription
     noise — skip them, but record what was skipped so a run on a small
     host is distinguishable from a run that covered everything *)
  let host_cores = Domain.recommended_domain_count () in
  let widths, skipped_widths =
    List.partition
      (fun j -> j <= host_cores)
      (List.sort_uniq compare [ 1; 2; 4; max 1 Arde.Options.default_jobs ])
  in
  let sweep = List.map (fun j -> (j, snd (wall (fun () -> run_all j)))) widths in
  let t_seq = List.assoc 1 sweep in
  (* the cache's contribution: same sequential sweep, cold every run *)
  Arde.Analysis_cache.set_enabled false;
  let (), t_nocache = wall (fun () -> run_all 1) in
  Arde.Analysis_cache.set_enabled true;
  let (), t_cached = wall (fun () -> run_all 1) in
  (* acceptance probe: a 5-seed run against the warm cache records hits *)
  Arde.Analysis_cache.reset_stats ();
  ignore
    (Arde.detect ~options:(Arde.Options.make ~seeds:[ 1; 2; 3; 4; 5 ] ()) mode
       rep);
  let cs = Arde.Analysis_cache.stats () in
  let json =
    J.Obj
      [
        ("host_cores", J.Int host_cores);
        ("skipped_widths", J.List (List.map (fun j -> J.Int j) skipped_widths));
        ("default_jobs", J.Int Arde.Options.default_jobs);
        ("mode", J.String (Arde.Config.mode_name mode));
        ("workloads", J.Int (List.length progs));
        ("seeds_per_run", J.Int (List.length seeds));
        ( "stages",
          J.Obj
            [
              ("lower_s", J.Float t_lower);
              ("instrument_s", J.Float t_instrument);
              ("per_seed_stage_s", J.Float t_seq);
            ] );
        ( "jobs_sweep",
          J.List
            (List.map
               (fun (j, t) ->
                 J.Obj
                   [
                     ("jobs", J.Int j);
                     ("wall_s", J.Float t);
                     ("speedup", J.Float (t_seq /. t));
                   ])
               sweep) );
        ( "cache",
          J.Obj
            [
              ("disabled_wall_s", J.Float t_nocache);
              ("enabled_wall_s", J.Float t_cached);
              ("speedup", J.Float (t_nocache /. t_cached));
              ( "five_seed_run",
                J.Obj
                  [
                    ("lower_hits", J.Int cs.Arde.Analysis_cache.lower_hits);
                    ( "lower_misses",
                      J.Int cs.Arde.Analysis_cache.lower_misses );
                    ( "instrument_hits",
                      J.Int cs.Arde.Analysis_cache.instrument_hits );
                    ( "instrument_misses",
                      J.Int cs.Arde.Analysis_cache.instrument_misses );
                  ] );
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string ~minify:false json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ---- the engine differential benchmark ----

   `bench engine [-o PATH]` replays recorded traces through the optimized
   epoch engine and the frozen reference engine, writes the rows to
   BENCH_engine.json, and exits non-zero when the CI gate fails (the
   optimized engine slower than the reference on streamcluster under
   nolib+spin(7), or any report spot-check disagreeing). *)

let engine_bench ~out () =
  let module J = Arde.Json in
  let rows = Arde_harness.Engine_bench.run ~repeats:5 () in
  section "Engine differential: optimized vs reference, per trace";
  print_string (Arde_harness.Engine_bench.render rows);
  let oc = open_out out in
  output_string oc (J.to_string ~minify:false (Arde_harness.Engine_bench.to_json rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  match Arde_harness.Engine_bench.gate rows with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "bench engine: FAIL: %s\n") failures;
      exit 1

(* ---- the machine differential benchmark ----

   `bench machine [-o PATH]` runs each workload × mode end-to-end on the
   compiled machine and on the frozen reference machine, writes the
   measurements (quiet steps/s, words/step, events/s, plus the
   straight-line zero-allocation probe) to BENCH_machine.json, and exits
   non-zero when the CI gate fails (the optimized machine slower than the
   reference on streamcluster under nolib+spin(7), any trace spot-check
   disagreeing, or the straight-line path allocating). *)

let machine_bench ~out () =
  let module J = Arde.Json in
  let results = Arde_harness.Machine_bench.run ~repeats:5 () in
  section "Machine differential: compiled vs reference, end-to-end";
  print_string (Arde_harness.Machine_bench.render results);
  let oc = open_out out in
  output_string oc
    (J.to_string ~minify:false (Arde_harness.Machine_bench.to_json results));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  match Arde_harness.Machine_bench.gate results with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "bench machine: FAIL: %s\n") failures;
      exit 1

(* ---- golden-trace fixture generator ----

   `bench fixtures [-o PATH]` runs the full fixture enumeration
   (Trace_fixtures.groups) through the current machine and writes one
   summary line per run.  The committed file is the machine's correctness
   baseline: test_machine_diff replays the same enumeration and asserts
   every trace hash, length, step count and outcome is identical. *)

let fixtures ~impl ~out () =
  let t0 = Unix.gettimeofday () in
  let rows = Arde_harness.Trace_fixtures.run_all impl in
  Arde_harness.Trace_fixtures.write_file out rows;
  Printf.printf "wrote %s (%d fixtures, %.1fs)\n" out (List.length rows)
    (Unix.gettimeofday () -. t0)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec out_path = function
    | "-o" :: p :: _ -> p
    | _ :: rest -> out_path rest
    | [] -> "BENCH_parallel.json"
  in
  if List.mem "fixtures" args then
    fixtures
      ~impl:
        (if List.mem "--ref" args then
           Arde_harness.Trace_fixtures.reference_machine
         else Arde_harness.Trace_fixtures.current_machine)
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "test/fixtures/machine_traces.txt"
        | p -> p)
      ()
  else if List.mem "machine" args then
    machine_bench
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "BENCH_machine.json"
        | p -> p)
      ()
  else if List.mem "engine" args then
    engine_bench
      ~out:
        (match out_path args with
        | "BENCH_parallel.json" -> "BENCH_engine.json"
        | p -> p)
      ()
  else if List.mem "parallel" args then parallel_bench ~out:(out_path args) ()
  else begin
    tables ();
    extension_table ();
    figures ();
    bechamel_suite ()
  end
